"""Dynamic maintenance of core numbers under edge updates.

The paper's server keeps an index over graphs that users keep
uploading and editing; rebuilding the whole core decomposition (and
CL-tree) on every edge change would defeat the online story.  This
module maintains core numbers incrementally:

* **Insertion** uses the subcore/traversal insight (Sariyuce et al.):
  when edge ``{u, v}`` arrives with ``k = min(core(u), core(v))``,
  only vertices with core number exactly ``k`` that are reachable from
  the lower endpoint through core-``k`` vertices can be promoted, and
  each promotion is by exactly 1.  A local peel over that candidate
  set decides who is promoted -- no global work.

* **Deletion** demotes conservatively: only core-``k`` vertices in the
  same core-``k``-connected region can drop, and by exactly 1; we
  re-peel that region locally.

Both paths are property-tested against full recomputation.
:class:`CoreMaintainer` also tracks an attached CL-tree's staleness so
:class:`~repro.explorer.cexplorer.CExplorer` can rebuild lazily.
"""

from repro.core.kcore import core_decomposition


class CoreMaintainer:
    """Keeps ``core[v]`` current while the graph mutates through it.

    Use it as the single mutation gateway::

        maintainer = CoreMaintainer(graph)
        maintainer.insert_edge(u, v)   # graph.add_edge + core patch
        maintainer.remove_edge(u, v)
        maintainer.core(v)             # always up to date

    ``updates`` counts patched operations; ``promotions``/``demotions``
    count vertices whose core number actually changed (useful in the
    maintenance bench).
    """

    def __init__(self, graph):
        self.graph = graph
        self._core = core_decomposition(graph)
        self.updates = 0
        self.promotions = 0
        self.demotions = 0
        self._listeners = []

    # ------------------------------------------------------------------
    # invalidation hooks
    # ------------------------------------------------------------------
    def add_listener(self, callback):
        """Subscribe to mutations: ``callback(event)`` runs after each
        applied edge update with ``{"kind", "edge", "changed"}`` where
        ``changed`` is the set of vertices whose core number moved.

        The index manager uses this to bump index versions and evict
        affected cache entries without polling.
        """
        self._listeners.append(callback)

    def _notify(self, kind, u, v, changed):
        if not self._listeners:
            return
        event = {"kind": kind, "edge": (u, v),
                 "changed": frozenset(changed)}
        for callback in list(self._listeners):
            callback(event)

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    def core(self, v):
        """Current core number of ``v``."""
        return self._core[v]

    def core_numbers(self):
        """A copy of the full core-number array."""
        return list(self._core)

    # ------------------------------------------------------------------
    # mutations
    # ------------------------------------------------------------------
    def add_vertex(self, label=None, keywords=()):
        """Add an isolated vertex (core number 0) to the graph."""
        vid = self.graph.add_vertex(label, keywords)
        self._core.append(0)
        return vid

    def insert_edge(self, u, v):
        """Add edge ``{u, v}`` and patch core numbers locally.

        Traversal with MCD pruning: a core-``k`` vertex can only be
        promoted when it has *more than k* neighbours of core >= k
        (its max-core degree), and promotion evidence propagates only
        through such vertices, so the BFS from the lower endpoint never
        enters the rest of the k-shell.
        """
        if not self.graph.add_edge(u, v):
            return False
        self.updates += 1
        core = self._core
        k = min(core[u], core[v])
        roots = [w for w in (u, v) if core[w] == k]
        candidates = self._promotable_region(roots, k)
        promoted = self._settle(candidates, k)
        for w in promoted:
            core[w] = k + 1
            self.promotions += 1
        self._notify("insert", u, v, promoted)
        return True

    def remove_edge(self, u, v):
        """Remove edge ``{u, v}`` and patch core numbers locally.

        Purely local cascade: only core-``k`` vertices can drop (each
        by exactly 1), and only when their count of core->=k neighbours
        falls below ``k``; each drop decrements its same-shell
        neighbours' counts, so the cascade touches exactly the vertices
        that change plus their neighbourhoods.
        """
        self.graph.remove_edge(u, v)
        self.updates += 1
        core = self._core
        k = min(core[u], core[v])
        if k == 0:
            self._notify("remove", u, v, ())
            return
        cd = {}

        def support(w):
            """Neighbours of ``w`` at core level >= k (memoized)."""
            if w not in cd:
                cd[w] = sum(1 for x in self.graph.neighbors(w)
                            if core[x] >= k)
            return cd[w]

        queue = [w for w in (u, v)
                 if core[w] == k and support(w) < k]
        dropped = set(queue)
        while queue:
            w = queue.pop()
            core[w] = k - 1
            self.demotions += 1
            for x in self.graph.neighbors(w):
                if core[x] == k and x not in dropped:
                    if x in cd:
                        # Cached count still includes w: subtract it.
                        cd[x] -= 1
                    else:
                        # Fresh count: w is already demoted, so it is
                        # excluded automatically.
                        support(x)
                    if cd[x] < k:
                        dropped.add(x)
                        queue.append(x)
        self._notify("remove", u, v, dropped)

    # ------------------------------------------------------------------
    # internals
    # ------------------------------------------------------------------
    def _region(self, roots, k):
        """Core-``k`` vertices reachable from ``roots`` through
        core-``k`` vertices (the full subcore; kept for diagnostics)."""
        core = self._core
        seen = {r for r in roots if core[r] == k}
        stack = list(seen)
        while stack:
            w = stack.pop()
            for x in self.graph.neighbors(w):
                if core[x] == k and x not in seen:
                    seen.add(x)
                    stack.append(x)
        return seen

    def _promotable_region(self, roots, k):
        """The pruned subcore: candidates for promotion past ``k``.

        Two pruning levels (Sariyuce et al.):

        * **MCD**: a vertex with at most ``k`` neighbours of core >= k
          cannot reach core k+1;
        * **PCD** ("purecore degree"): a vertex needs more than ``k``
          neighbours that could themselves sit in the new (k+1)-core --
          i.e. neighbours with core > k, or core == k *and* MCD > k.
          Traversal only passes through vertices with PCD > k.

        Together these keep single-edge updates local even when the
        k-shell spans a third of the graph.
        """
        core = self._core
        adj = self.graph._adj  # hot path: skip per-call bounds checks
        mcd_cache = {}

        def mcd(w):
            """Max-core degree of ``w`` (memoized)."""
            value = mcd_cache.get(w)
            if value is None:
                value = 0
                for x in adj[w]:
                    if core[x] >= k:
                        value += 1
                mcd_cache[w] = value
            return value

        def pcd(w):
            """Pure-core degree of ``w``."""
            value = 0
            for x in adj[w]:
                cx = core[x]
                if cx > k or (cx == k and mcd(x) > k):
                    value += 1
            return value

        seen = set()
        stack = []
        eligible = set()
        for r in roots:
            if core[r] == k and r not in seen:
                seen.add(r)
                if mcd(r) > k:
                    eligible.add(r)
                    if pcd(r) > k:
                        stack.append(r)
        while stack:
            w = stack.pop()
            for x in adj[w]:
                if core[x] == k and x not in seen:
                    seen.add(x)
                    if mcd(x) > k:
                        eligible.add(x)
                        if pcd(x) > k:
                            stack.append(x)
        return eligible

    def _settle(self, candidates, k):
        """Vertices of ``candidates`` that keep strictly more than ``k``
        neighbours counting higher-core vertices and surviving
        candidates (the local peel)."""
        core = self._core
        alive = set(candidates)
        deg = {}
        queue = []
        for w in alive:
            d = 0
            for x in self.graph.neighbors(w):
                if x in alive or core[x] > k:
                    d += 1
            deg[w] = d
            if d <= k:
                queue.append(w)
        removed = set(queue)
        while queue:
            w = queue.pop()
            alive.discard(w)
            for x in self.graph.neighbors(w):
                if x in alive:
                    deg[x] -= 1
                    if deg[x] <= k and x not in removed:
                        removed.add(x)
                        queue.append(x)
        return alive

    # ------------------------------------------------------------------
    # verification helper (used by tests and the bench)
    # ------------------------------------------------------------------
    def verify(self):
        """Recompute from scratch and compare; returns True when the
        maintained numbers are exact."""
        return self._core == core_decomposition(self.graph)
