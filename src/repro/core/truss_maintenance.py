"""Dynamic maintenance of triangle support and truss numbers.

:class:`~repro.core.maintenance.CoreMaintainer` keeps *core* numbers
current under edge updates, which is what makes the engine's selective
cache invalidation sound for the minimum-degree algorithm families
(ACQ, Global).  The triangle-based families (k-truss, ATC) were left
behind: core maintenance does not track how triangle support cascades,
so every maintenance update blindly evicted their cached results and
sharding excluded them outright.  This module closes that gap.

:class:`TrussMaintainer` keeps two structures exact while the graph
mutates through it:

* **per-edge triangle support** -- patched purely locally: inserting
  ``{u, v}`` bumps the support of ``(u, w)``/``(v, w)`` for every
  common neighbour ``w`` (those are exactly the new triangles), and
  deletion undoes the same set;

* **per-edge truss numbers** -- patched by a *localized fixed-point
  iteration*.  Truss numbers are the unique maximal fixed point of the
  triangle h-index operator

  ``t(e) = 2 + H({min(t(f), t(g)) - 2 : triangles (e, f, g)})``

  (Sariyuce et al., the nucleus-decomposition generalisation of the
  coreness h-index result), and iterating ``v <- min(v, T(v))`` from
  any upper bound converges to it.  A single edge update changes any
  truss number by at most 1 (Huang et al., SIGMOD 2014), so:

  - **deletion** starts from the current values (already an upper
    bound) and drains a worklist seeded with the edges that lost a
    triangle -- only edges whose constraint actually weakens are ever
    re-evaluated;
  - **insertion** first grows a conservative *promotion region* --
    edges triangle-reachable from the new edge through triangles whose
    other two edges sit at the candidate's level or above (the truss
    analogue of the subcore) -- bumps their upper bounds by 1, and
    drains the same worklist; edges outside the region provably cannot
    change, so their values anchor the iteration.

Both paths are property-tested identical to a from-scratch
:func:`~repro.core.ktruss.truss_decomposition` after every update, and
:meth:`TrussMaintainer.verify` is the full-recompute fallback check.

The listener protocol mirrors :class:`CoreMaintainer`: subscribers see
``{"kind", "edge", "changed", "support_changed"}`` where ``changed``
is the set of edges whose truss number moved and ``support_changed``
the support cascade (every edge that gained or lost a triangle).  The
:class:`~repro.engine.index_manager.IndexManager` turns those into the
truss-affected vertex footprint that lets cached k-truss/ATC results
survive unrelated updates.
"""

from repro.core.ktruss import edge_support, truss_decomposition


def edge_key(u, v):
    """Canonical ``(min, max)`` key for the undirected edge ``{u, v}``."""
    return (u, v) if u < v else (v, u)


def _h_index(values):
    """Largest ``h`` such that at least ``h`` of ``values`` are >= ``h``."""
    ordered = sorted(values, reverse=True)
    h = 0
    for i, x in enumerate(ordered):
        if x >= i + 1:
            h = i + 1
        else:
            break
    return h


class TrussMaintainer:
    """Keeps per-edge support and trussness current under edge updates.

    Standalone use (the maintainer as mutation gateway)::

        maintainer = TrussMaintainer(graph)
        maintainer.add_edge(u, v)      # graph.add_edge + truss patch
        maintainer.remove_edge(u, v)
        maintainer.truss(u, v)         # always exact

    When attached through
    :meth:`~repro.engine.index_manager.IndexManager.attach_truss_maintainer`
    the :class:`~repro.core.maintenance.CoreMaintainer` stays the single
    mutation gateway and the index manager forwards each applied update
    via :meth:`apply` -- do not mix both gateways on one graph.

    ``updates`` counts patched operations; ``promotions``/``demotions``
    count edges whose truss number moved; the ``*_cascade_size``
    counters feed the ``truss_cascade_size`` metric.
    """

    def __init__(self, graph):
        self.graph = graph
        self._support = edge_support(graph)
        # The peel consumes its support map destructively; hand it a
        # copy so one support pass serves both structures.
        self._truss = truss_decomposition(graph,
                                          support=dict(self._support))
        self.updates = 0
        self.promotions = 0
        self.demotions = 0
        self.last_cascade_size = 0
        self.max_cascade_size = 0
        self.total_cascade_size = 0
        self._listeners = []

    # ------------------------------------------------------------------
    # invalidation hooks
    # ------------------------------------------------------------------
    def add_listener(self, callback):
        """Subscribe to mutations: ``callback(event)`` runs after each
        applied edge update with ``{"kind", "edge", "changed",
        "support_changed"}`` -- ``changed`` is the frozenset of edges
        whose truss number moved, ``support_changed`` the frozenset of
        edges whose triangle support moved (the support cascade).
        """
        self._listeners.append(callback)

    def _notify(self, kind, u, v, changed, support_changed):
        if not self._listeners:
            return
        event = {"kind": kind, "edge": (u, v),
                 "changed": frozenset(changed),
                 "support_changed": frozenset(support_changed)}
        for callback in list(self._listeners):
            callback(event)

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    def truss(self, u, v):
        """Current truss number of edge ``{u, v}``."""
        return self._truss[edge_key(u, v)]

    def truss_numbers(self):
        """A copy of the full ``{edge: truss}`` map (u < v keys)."""
        return dict(self._truss)

    def support(self, u, v):
        """Current triangle support of edge ``{u, v}``."""
        return self._support[edge_key(u, v)]

    def supports(self):
        """A copy of the full ``{edge: support}`` map."""
        return dict(self._support)

    # ------------------------------------------------------------------
    # mutations (gateway mode)
    # ------------------------------------------------------------------
    def add_vertex(self, label=None, keywords=()):
        """Add an isolated vertex (no truss state changes)."""
        return self.graph.add_vertex(label, keywords)

    def add_edge(self, u, v):
        """Add edge ``{u, v}`` and patch support/trussness locally."""
        if not self.graph.add_edge(u, v):
            return False
        self._applied_insert(u, v)
        return True

    def remove_edge(self, u, v):
        """Remove edge ``{u, v}`` and patch support/trussness locally."""
        self.graph.remove_edge(u, v)
        self._applied_remove(u, v)

    def apply(self, kind, u, v):
        """Patch for an edge update already applied to the graph.

        The observer entry point used when a
        :class:`~repro.core.maintenance.CoreMaintainer` is the mutation
        gateway: ``kind`` is ``"insert"`` or ``"remove"`` and the graph
        must already reflect the update.  Returns the event dict that
        listeners received.
        """
        if kind == "insert":
            return self._applied_insert(u, v)
        return self._applied_remove(u, v)

    # ------------------------------------------------------------------
    # the insertion cascade
    # ------------------------------------------------------------------
    def _applied_insert(self, u, v):
        self.updates += 1
        adj = self.graph.neighbors
        e0 = edge_key(u, v)
        common = adj(u) & adj(v)
        support = self._support
        support_changed = {e0}
        for w in common:
            for e in (edge_key(u, w), edge_key(v, w)):
                support[e] = support.get(e, 0) + 1
                support_changed.add(e)
        support[e0] = len(common)

        # Conservative promotion region: an existing edge g at level
        # t(g) can only rise to t(g)+1 through a triangle whose other
        # two edges can reach t(g)+1 -- i.e. whose upper bounds
        # (old value + 1, or support+2 for the new edge) allow it.
        # BFS from e0 over that relation; everything outside the
        # region provably keeps its truss number.
        truss = self._truss
        bound0 = len(common) + 2
        region = {e0: bound0}
        stack = [e0]
        while stack:
            f = stack.pop()
            a, b = f
            bf = region[f]
            for w in adj(a) & adj(b):
                fa, fb = edge_key(a, w), edge_key(b, w)
                for g, h in ((fa, fb), (fb, fa)):
                    if g in region:
                        continue
                    tg = truss[g]
                    ubh = region.get(h, truss.get(h, 0) + 1)
                    if tg + 1 <= bf and tg + 1 <= ubh:
                        region[g] = tg + 1
                        stack.append(g)
        changed = self._settle(region)
        self.promotions += len(changed)
        self._record_cascade(changed)
        self._notify("insert", u, v, changed, support_changed)
        return {"kind": "insert", "edge": (u, v),
                "changed": frozenset(changed),
                "support_changed": frozenset(support_changed)}

    # ------------------------------------------------------------------
    # the deletion cascade
    # ------------------------------------------------------------------
    def _applied_remove(self, u, v):
        self.updates += 1
        adj = self.graph.neighbors
        e0 = edge_key(u, v)
        self._truss.pop(e0, None)
        self._support.pop(e0, None)
        # Common neighbours are unaffected by removing {u, v} itself,
        # so the lost triangles are still enumerable post-removal.
        common = adj(u) & adj(v)
        support = self._support
        support_changed = {e0}
        seeds = []
        for w in common:
            for e in (edge_key(u, w), edge_key(v, w)):
                support[e] -= 1
                support_changed.add(e)
                seeds.append(e)
        # Current values upper-bound the new ones (deletion only
        # lowers trussness); drain from the edges that lost a triangle.
        changed = self._settle({}, worklist=seeds)
        self.demotions += len(changed)
        self._record_cascade(changed)
        self._notify("remove", u, v, changed, support_changed)
        return {"kind": "remove", "edge": (u, v),
                "changed": frozenset(changed),
                "support_changed": frozenset(support_changed)}

    # ------------------------------------------------------------------
    # the shared fixed-point drain
    # ------------------------------------------------------------------
    def _settle(self, bounds, worklist=None):
        """Drain ``v <- min(v, T(v))`` to its fixed point.

        ``bounds`` maps region edges to bumped upper bounds
        (insertion); ``worklist`` seeds extra edges to re-evaluate at
        their current values (deletion).  Returns the list of edges
        whose stored truss number changed (new edges excluded).
        """
        truss = self._truss
        adj = self.graph.neighbors
        overlay = dict(bounds)

        def val(e):
            """Current (overlaid) truss bound of edge ``e``."""
            got = overlay.get(e)
            return got if got is not None else truss.get(e, 2)

        stack = list(bounds)
        if worklist:
            stack.extend(worklist)
        queued = set(stack)
        while stack:
            f = stack.pop()
            queued.discard(f)
            a, b = f
            mins = []
            for w in adj(a) & adj(b):
                mins.append(min(val(edge_key(a, w)),
                                val(edge_key(b, w))) - 2)
            new = 2 + _h_index(mins)
            if new >= val(f):
                continue
            if f not in overlay and f not in truss:
                continue
            overlay[f] = new
            # Only triangle partners sitting above the new value can
            # lose a qualifying triangle; everything else keeps its
            # h-index evidence.
            for w in adj(a) & adj(b):
                for g in (edge_key(a, w), edge_key(b, w)):
                    if g not in queued and val(g) > new:
                        stack.append(g)
                        queued.add(g)
        changed = []
        for e, value in overlay.items():
            before = truss.get(e)
            if before != value:
                truss[e] = value
                if before is not None:
                    changed.append(e)
        return changed

    def _record_cascade(self, changed):
        size = len(changed)
        self.last_cascade_size = size
        self.total_cascade_size += size
        if size > self.max_cascade_size:
            self.max_cascade_size = size

    # ------------------------------------------------------------------
    # verification helper (used by tests and the bench)
    # ------------------------------------------------------------------
    def verify(self):
        """Recompute from scratch and compare; returns True when both
        the maintained supports and truss numbers are exact."""
        return (self._support == edge_support(self.graph)
                and self._truss == truss_decomposition(self.graph))


def truss_affected_vertices(graph, event):
    """The vertex footprint a truss-maintenance ``event`` could touch.

    Endpoints of the updated edge, of every support-changed edge, and
    of every truss-changed edge -- plus their one-hop neighbourhoods
    (community growth or shrink must pass through a neighbour of a
    changed endpoint).  Cached k-truss/ATC results whose vertex sets
    are disjoint from this region are provably unaffected.
    """
    points = set(event["edge"])
    for a, b in event["support_changed"]:
        points.add(a)
        points.add(b)
    for a, b in event["changed"]:
        points.add(a)
        points.add(b)
    affected = set(points)
    for p in points:
        if p in graph:
            affected.update(graph.neighbors(p))
    return affected
