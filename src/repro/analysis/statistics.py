"""Community statistics: the table at the bottom of Figure 6(a).

For every method the UI reports the number of returned communities and
their average numbers of vertices, edges, and degrees; this module
computes those rows plus the extra structural measures the analysis
panel can chart.
"""

from repro.analysis.metrics import cmf, community_density, cpj


def community_statistics(communities, query_vertex=None):
    """Aggregate statistics for one method's result list.

    Returns a dict shaped like one row of the Figure 6(a) table::

        {"communities": 3, "vertices": 39.0, "edges": 102.0,
         "degree": 5.2, "cpj": ..., "cmf": ..., "density": ...}

    ``vertices``/``edges`` are averages across the returned
    communities, as in the paper.  ``cpj``/``cmf`` are averaged too;
    ``cmf`` is only present when a query vertex is known.
    """
    count = len(communities)
    if count == 0:
        return {"communities": 0, "vertices": 0.0, "edges": 0.0,
                "degree": 0.0, "cpj": 0.0, "cmf": 0.0, "density": 0.0}
    vertices = sum(len(c) for c in communities) / count
    edges = sum(c.edge_count for c in communities) / count
    degree = sum(c.average_degree for c in communities) / count
    cpj_avg = sum(cpj(c) for c in communities) / count
    density = sum(community_density(c) for c in communities) / count
    row = {
        "communities": count,
        "vertices": round(vertices, 1),
        "edges": round(edges, 1),
        "degree": round(degree, 2),
        "cpj": round(cpj_avg, 4),
        "density": round(density, 4),
    }
    qv = query_vertex
    if qv is None and communities[0].query_vertices:
        qv = communities[0].query_vertices[0]
    if qv is not None:
        cmf_avg = sum(cmf(c, query_vertex=qv) for c in communities) / count
        row["cmf"] = round(cmf_avg, 4)
    else:
        row["cmf"] = 0.0
    return row


def statistics_table(results, query_vertex=None):
    """Assemble the full Figure 6(a) table.

    ``results`` maps method name -> list of communities.  Returns a
    list of row dicts (one per method, insertion order preserved), each
    with a ``"method"`` key first.
    """
    rows = []
    for method, communities in results.items():
        row = {"method": method}
        row.update(community_statistics(communities,
                                        query_vertex=query_vertex))
        rows.append(row)
    return rows


def format_table(rows, columns=("method", "communities", "vertices",
                                "edges", "degree")):
    """Render rows as the aligned text table the demo prints.

    Mirrors the Figure 6(a) layout: Method / Communities / Vertices /
    Edges / Degree.
    """
    headers = [c.capitalize() for c in columns]
    str_rows = [[str(r.get(c, "")) for c in columns] for r in rows]
    widths = [max(len(h), *(len(row[i]) for row in str_rows)) if str_rows
              else len(h) for i, h in enumerate(headers)]
    def fmt(cells):
        return "  ".join(cell.ljust(widths[i])
                         for i, cell in enumerate(cells)).rstrip()
    lines = [fmt(headers), fmt(["-" * w for w in widths])]
    lines.extend(fmt(row) for row in str_rows)
    return "\n".join(lines)
