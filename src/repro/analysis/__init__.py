"""Comparison-analysis facilities (Section 4, Figure 6).

* :mod:`repro.analysis.metrics` -- the CPJ and CMF community-quality
  metrics of the ACQ paper, plus density/conductance/modularity
  helpers;
* :mod:`repro.analysis.statistics` -- the per-method statistics table
  (communities, vertices, edges, average degree);
* :mod:`repro.analysis.comparison` -- the module that runs several CR
  algorithms on one query and assembles the full Figure 6 report.
"""

from repro.analysis.batch import (
    batch_evaluate,
    format_batch_table,
    pick_query_vertices,
)
from repro.analysis.comparison import ComparisonReport, compare_methods
from repro.analysis.graph_stats import graph_summary
from repro.analysis.ground_truth import (
    ari,
    evaluate_partition,
    f1_score,
    nmi,
    partition_f1,
)
from repro.analysis.metrics import (
    cmf,
    community_conductance,
    community_density,
    cpj,
    keyword_jaccard,
    similarity_matrix,
)
from repro.analysis.statistics import community_statistics, statistics_table
from repro.analysis.themes import infer_theme, theme_of

__all__ = [
    "ComparisonReport",
    "ari",
    "batch_evaluate",
    "cmf",
    "format_batch_table",
    "graph_summary",
    "infer_theme",
    "pick_query_vertices",
    "theme_of",
    "evaluate_partition",
    "f1_score",
    "nmi",
    "partition_f1",
    "community_conductance",
    "community_density",
    "community_statistics",
    "compare_methods",
    "cpj",
    "keyword_jaccard",
    "similarity_matrix",
    "statistics_table",
]
