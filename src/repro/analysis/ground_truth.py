"""Effectiveness analysis against ground-truth communities.

The abstract promises "functions for analyzing their effectiveness";
when a dataset carries ground-truth communities (the synthetic DBLP
generator plants them; karate has the faction split), these metrics
quantify how well a CD partition or a single CS result matches:

* :func:`f1_score` -- best-match precision/recall/F1 of one community
  against a ground-truth set;
* :func:`partition_f1` -- average best-match F1 over a whole partition
  (both directions, the common CD evaluation protocol);
* :func:`nmi` -- normalised mutual information between two partitions;
* :func:`ari` -- adjusted Rand index.

All are implemented from first principles (no external deps) and
validated against hand-computed values and NetworkX-free identities in
the tests.
"""

import math


def _as_sets(partition):
    out = []
    for members in partition:
        if hasattr(members, "vertices"):
            members = members.vertices
        out.append(frozenset(members))
    return [s for s in out if s]


def f1_score(community, ground_truth):
    """Precision, recall and F1 of ``community`` vs its best GT match.

    ``community`` may be a :class:`Community` or a vertex set;
    ``ground_truth`` is an iterable of vertex sets.  Returns
    ``{"precision": p, "recall": r, "f1": f, "match": frozenset}``.
    """
    members = frozenset(community.vertices
                        if hasattr(community, "vertices") else community)
    if not members:
        raise ValueError("community is empty")
    best = {"precision": 0.0, "recall": 0.0, "f1": 0.0, "match": None}
    for truth in _as_sets(ground_truth):
        overlap = len(members & truth)
        if overlap == 0:
            continue
        precision = overlap / len(members)
        recall = overlap / len(truth)
        f1 = 2 * precision * recall / (precision + recall)
        if f1 > best["f1"]:
            best = {"precision": precision, "recall": recall, "f1": f1,
                    "match": truth}
    return best


def partition_f1(found, ground_truth):
    """Symmetric average-F1 between two covers (the standard protocol).

    ``0.5 * (avg_{c in found} max_t F1(c,t)
           + avg_{t in truth} max_c F1(t,c))``.
    """
    found = _as_sets(found)
    truth = _as_sets(ground_truth)
    if not found or not truth:
        return 0.0

    def one_way(src, dst):
        total = 0.0
        for s in src:
            total += f1_score(s, dst)["f1"]
        return total / len(src)

    return 0.5 * (one_way(found, truth) + one_way(truth, found))


def _entropy(sizes, n):
    h = 0.0
    for size in sizes:
        if size:
            p = size / n
            h -= p * math.log(p)
    return h


def nmi(partition_a, partition_b):
    """Normalised mutual information of two *partitions* (disjoint).

    Uses the arithmetic-mean normalisation:
    ``NMI = 2 I(A;B) / (H(A) + H(B))``; 1.0 for identical partitions,
    0.0 for independent ones.  Both partitions must cover the same
    element set.
    """
    a = _as_sets(partition_a)
    b = _as_sets(partition_b)
    universe_a = set().union(*a) if a else set()
    universe_b = set().union(*b) if b else set()
    if universe_a != universe_b:
        raise ValueError("partitions cover different element sets")
    n = len(universe_a)
    if n == 0:
        return 0.0
    h_a = _entropy([len(s) for s in a], n)
    h_b = _entropy([len(s) for s in b], n)
    if h_a == 0.0 and h_b == 0.0:
        return 1.0  # both trivial: identical single-cluster partitions
    mutual = 0.0
    for sa in a:
        for sb in b:
            overlap = len(sa & sb)
            if overlap:
                mutual += (overlap / n) * math.log(
                    n * overlap / (len(sa) * len(sb)))
    denom = h_a + h_b
    return 2.0 * mutual / denom if denom else 0.0


def ari(partition_a, partition_b):
    """Adjusted Rand index of two partitions of the same element set."""
    a = _as_sets(partition_a)
    b = _as_sets(partition_b)
    universe_a = set().union(*a) if a else set()
    universe_b = set().union(*b) if b else set()
    if universe_a != universe_b:
        raise ValueError("partitions cover different element sets")
    n = len(universe_a)
    if n == 0:
        return 1.0

    def comb2(x):
        return x * (x - 1) / 2.0

    sum_cells = 0.0
    for sa in a:
        for sb in b:
            sum_cells += comb2(len(sa & sb))
    sum_a = sum(comb2(len(s)) for s in a)
    sum_b = sum(comb2(len(s)) for s in b)
    total = comb2(n)
    expected = sum_a * sum_b / total if total else 0.0
    max_index = 0.5 * (sum_a + sum_b)
    if max_index == expected:
        return 1.0
    return (sum_cells - expected) / (max_index - expected)


def evaluate_partition(found, ground_truth):
    """All partition metrics in one report dict."""
    return {
        "f1": round(partition_f1(found, ground_truth), 4),
        "nmi": round(nmi(found, ground_truth), 4),
        "ari": round(ari(found, ground_truth), 4),
        "found_communities": len(_as_sets(found)),
        "true_communities": len(_as_sets(ground_truth)),
    }
