"""Community-quality metrics: CPJ, CMF and structural measures.

Section 4 of the paper: *"we propose two metrics: CPJ and CMF.  The
metric CPJ measures the average similarity over all pairs of vertices,
and the metric CMF measures the average frequency of keywords in W(q)
for all the vertices in the community.  In general, the higher values
of CPJ and CMF imply better cohesiveness of a community."*

Both are keyword (semantic) metrics; the structural ones (density,
conductance) complete the analysis panel.
"""

import itertools

from repro.util.rng import make_rng


def keyword_jaccard(graph, u, v):
    """Jaccard similarity of the two vertices' keyword sets."""
    a, b = graph.keywords(u), graph.keywords(v)
    if not a and not b:
        return 0.0
    inter = len(a & b)
    union = len(a) + len(b) - inter
    return inter / union if union else 0.0


def cpj(community, max_pairs=200000, seed=0):
    """Community Pairwise Jaccard: mean keyword Jaccard over all pairs.

    For communities with more than ``max_pairs`` vertex pairs the mean
    is estimated on a uniform sample of pairs (deterministic under
    ``seed``); exact otherwise.  Returns a value in [0, 1]; a single-
    vertex community scores 1.0 (perfect self-similarity, matching the
    ACQ paper's convention that smaller tight groups score high).
    """
    graph = community.graph
    members = sorted(community.vertices)
    n = len(members)
    if n < 2:
        return 1.0
    total_pairs = n * (n - 1) // 2
    if total_pairs <= max_pairs:
        pairs = itertools.combinations(members, 2)
        count = total_pairs
    else:
        rng = make_rng(seed)
        pairs = ((members[a], members[b]) for a, b in
                 (sorted(rng.sample(range(n), 2)) for _ in range(max_pairs)))
        count = max_pairs
    score = sum(keyword_jaccard(graph, u, v) for u, v in pairs)
    return score / count


def cmf(community, query_vertex=None):
    """Community Member Frequency w.r.t. the query's keywords.

    For each vertex ``v`` of the community, the fraction of ``W(q)``
    present in ``W(v)``; averaged over members.  Equivalently: the mean
    over keywords of ``W(q)`` of their occurrence frequency inside the
    community.  Returns a value in [0, 1].
    """
    graph = community.graph
    if query_vertex is None:
        if not community.query_vertices:
            raise ValueError(
                "community has no query vertex; pass query_vertex=...")
        query_vertex = community.query_vertices[0]
    wq = graph.keywords(query_vertex)
    if not wq:
        return 0.0
    total = sum(len(graph.keywords(v) & wq) / len(wq) for v in community)
    return total / len(community)


def community_density(community):
    """Internal edge density: m / (n choose 2); 1.0 for a single vertex."""
    n = len(community)
    if n < 2:
        return 1.0
    return community.edge_count / (n * (n - 1) / 2.0)


def community_conductance(community):
    """Conductance of the community cut (lower is better).

    boundary / min(vol(C), vol(V - C)); 0.0 when the community has no
    outgoing edges.
    """
    graph = community.graph
    members = community.vertices
    boundary = 0
    vol_in = 0
    for v in members:
        for u in graph.neighbors(v):
            vol_in += 1
            if u not in members:
                boundary += 1
    vol_out = 2 * graph.edge_count - vol_in
    denom = min(vol_in, vol_out)
    if denom == 0:
        return 0.0
    return boundary / denom


def similarity_matrix(community, limit=50):
    """Pairwise keyword-Jaccard matrix for the analysis heat map.

    Returns ``(members, rows)`` where ``rows[i][j]`` is the similarity
    between members ``i`` and ``j``; at most ``limit`` members (by
    vertex id) are included, since the browser view caps the matrix.
    """
    graph = community.graph
    members = sorted(community.vertices)[:limit]
    rows = []
    for u in members:
        rows.append([round(keyword_jaccard(graph, u, v), 4)
                     for v in members])
    return members, rows
