"""Batch evaluation: many queries, aggregated -- the ACQ paper's
protocol.

A single walkthrough query (Figure 6) demonstrates the system; an
*evaluation* runs every method over a pool of random query vertices
and reports aggregate effectiveness (CPJ/CMF) and efficiency (query
time).  This module is that harness; the paper's "our system enables a
more extensive experimental evaluation of CR solutions" is exactly
this loop exposed as a library call.
"""

import time

from repro.algorithms.registry import get_cs_algorithm
from repro.analysis.metrics import cmf, cpj
from repro.core.kcore import core_decomposition
from repro.util.errors import CExplorerError
from repro.util.rng import make_rng


def pick_query_vertices(graph, k, count, seed=0, core=None):
    """Sample ``count`` query vertices whose core number is >= k.

    Restricting to feasible vertices keeps the comparison fair: every
    method has *some* answer for every query, so aggregate differences
    measure quality rather than failure rates.
    """
    if core is None:
        core = core_decomposition(graph)
    eligible = [v for v in graph.vertices() if core[v] >= k]
    if not eligible:
        return []
    rng = make_rng(seed)
    if count >= len(eligible):
        return list(eligible)
    return rng.sample(eligible, count)


def _timed_query(algo, graph, q, k, keywords, params):
    """Run one query; returns ``(elapsed_seconds, communities)``.

    Failures count as unanswered, matching the aggregate protocol.
    """
    start = time.perf_counter()
    try:
        communities = algo(graph, q, k, keywords=keywords, **params)
    except Exception:
        communities = []
    return time.perf_counter() - start, communities


def _explorer_algo(explorer, method):
    """Adapt ``explorer.search`` to the raw CS-algorithm signature so
    the timing/aggregation loop treats both paths identically."""
    def run(graph, q, k, keywords=None, **params):
        return explorer.search(method, q, k=k, keywords=keywords,
                               **params)
    return run


def batch_evaluate(graph, methods, k=4, queries=None, n_queries=20,
                   seed=0, method_params=None, keywords=None,
                   engine=None, explorer=None):
    """Run each method over the query pool and aggregate.

    Returns ``{method: row}`` where each row carries::

        queries, answered, avg_vertices, avg_edges, avg_degree,
        avg_cpj, avg_cmf, avg_seconds, total_seconds

    ``method_params`` maps method name -> extra kwargs (e.g. a shared
    CL-tree for the ACQ variants).

    ``engine`` (a :class:`~repro.engine.executor.QueryEngine`, or
    anything with its ``run_batch``) fans the per-query work out over
    the engine's worker pool: the whole evaluation gets the pool's
    parallelism for free.  ``avg_seconds``/``total_seconds`` stay
    per-query execution time, so the numbers are comparable between
    serial and parallel runs; ``wall_seconds`` reports the elapsed
    wall-clock for the method's whole pool.

    ``explorer`` routes every query through a
    :class:`~repro.explorer.cexplorer.CExplorer` facade instead of the
    raw algorithm callable, so planned execution, the engine result
    cache, and sharded fan-out (graphs registered with ``shards > 1``)
    all apply -- the way production traffic would run.  The explorer's
    active graph must be ``graph``; repeated queries then measure the
    warm path by design.
    """
    if explorer is not None and explorer.graph is not graph:
        raise CExplorerError(
            "explorer's active graph is not the evaluated graph; "
            "select_graph() it first (query vertex ids would silently "
            "resolve against the wrong graph)")
    if queries is None:
        queries = pick_query_vertices(graph, k, n_queries, seed=seed)
    method_params = method_params or {}
    results = {}
    for name in methods:
        if explorer is not None:
            algo = _explorer_algo(explorer, name)
        else:
            algo = get_cs_algorithm(name)
        params = dict(method_params.get(name, {}))
        wall_start = time.perf_counter()
        if engine is not None:
            calls = [(_timed_query, (algo, graph, q, k, keywords,
                                     params), {}) for q in queries]
            outcomes = engine.run_batch(calls, op="batch")
            # run_batch maps a raised exception to the exception
            # object; _timed_query already swallows algorithm errors,
            # so anything left is an engine-level failure -> unanswered.
            outcomes = [o if isinstance(o, tuple) else (0.0, [])
                        for o in outcomes]
        else:
            outcomes = [_timed_query(algo, graph, q, k, keywords,
                                     params) for q in queries]
        wall = time.perf_counter() - wall_start
        answered = 0
        sizes = []
        edges = []
        degrees = []
        cpjs = []
        cmfs = []
        total = 0.0
        for q, (elapsed, communities) in zip(queries, outcomes):
            total += elapsed
            if not communities:
                continue
            answered += 1
            community = communities[0]
            sizes.append(len(community))
            edges.append(community.edge_count)
            degrees.append(community.average_degree)
            cpjs.append(cpj(community))
            cmfs.append(cmf(community, query_vertex=q))

        def avg(xs):
            return round(sum(xs) / len(xs), 4) if xs else 0.0

        results[name] = {
            "queries": len(queries),
            "answered": answered,
            "avg_vertices": avg(sizes),
            "avg_edges": avg(edges),
            "avg_degree": avg(degrees),
            "avg_cpj": avg(cpjs),
            "avg_cmf": avg(cmfs),
            "avg_seconds": round(total / len(queries), 6) if queries
            else 0.0,
            "total_seconds": round(total, 4),
            "wall_seconds": round(wall, 4),
        }
    return results


def format_batch_table(results):
    """Render :func:`batch_evaluate` output as an aligned text table."""
    columns = ["method", "answered", "avg_vertices", "avg_degree",
               "avg_cpj", "avg_cmf", "avg_seconds"]
    rows = []
    for method, data in results.items():
        row = {"method": method}
        row.update({c: data[c] for c in columns[1:]})
        rows.append(row)
    headers = columns
    str_rows = [[str(r[c]) for c in columns] for r in rows]
    widths = [max(len(h), *(len(row[i]) for row in str_rows))
              if str_rows else len(h) for i, h in enumerate(headers)]

    def fmt(cells):
        return "  ".join(c.ljust(widths[i])
                         for i, c in enumerate(cells)).rstrip()

    lines = [fmt(headers), fmt(["-" * w for w in widths])]
    lines.extend(fmt(r) for r in str_rows)
    return "\n".join(lines)
