"""The Comparison Analysis module (Figure 3, right; Figure 6).

Runs several CR algorithms on the same query and assembles everything
the analysis screen shows: the statistics table, the CPJ/CMF bar data,
pairwise overlap between methods' communities, and the per-method
community lists for the "view" links.
"""

import time

from repro.algorithms.registry import get_cs_algorithm
from repro.analysis.metrics import cmf, cpj
from repro.analysis.statistics import format_table, statistics_table


class ComparisonReport:
    """Everything the Figure 6 analysis screen displays, as data."""

    def __init__(self, query_vertex, k, results, timings):
        self.query_vertex = query_vertex
        self.k = k
        self.results = results      # method -> list[Community]
        self.timings = timings      # method -> seconds

    def table_rows(self):
        """Figure 6(a) statistics table rows."""
        return statistics_table(self.results, query_vertex=self.query_vertex)

    def quality_bars(self):
        """CPJ / CMF per method -- the bar charts of Figure 6(a).

        Returns ``{method: {"cpj": float, "cmf": float}}``, averaging
        across each method's communities.
        """
        bars = {}
        for method, communities in self.results.items():
            if not communities:
                bars[method] = {"cpj": 0.0, "cmf": 0.0}
                continue
            bars[method] = {
                "cpj": round(sum(cpj(c) for c in communities)
                             / len(communities), 4),
                "cmf": round(sum(cmf(c, query_vertex=self.query_vertex)
                                 for c in communities)
                             / len(communities), 4),
            }
        return bars

    def overlap_matrix(self):
        """Jaccard overlap of member sets between methods' top results.

        The "Similarity Analysis" panel: how much do the communities
        found by different algorithms actually agree?
        """
        methods = [m for m, cs in self.results.items() if cs]
        matrix = {}
        for a in methods:
            va = set().union(*(c.vertices for c in self.results[a]))
            for b in methods:
                vb = set().union(*(c.vertices for c in self.results[b]))
                inter = len(va & vb)
                union = len(va | vb)
                matrix[(a, b)] = round(inter / union, 4) if union else 0.0
        return matrix

    def render_text(self):
        """The whole report as text (the demo's terminal rendering)."""
        lines = ["Comparison analysis (q={}, k={})".format(
            self.query_vertex, self.k), ""]
        lines.append(format_table(self.table_rows()))
        lines.append("")
        lines.append("Quality (higher is better):")
        for method, bars in self.quality_bars().items():
            lines.append("  {:<12} CPJ={:<8} CMF={:<8}".format(
                method, bars["cpj"], bars["cmf"]))
        lines.append("")
        lines.append("Query time (seconds):")
        for method, seconds in self.timings.items():
            lines.append("  {:<12} {:.4f}".format(method, seconds))
        return "\n".join(lines)

    def to_dict(self):
        """JSON document for the HTTP `analyze` endpoint."""
        return {
            "query_vertex": self.query_vertex,
            "k": self.k,
            "table": self.table_rows(),
            "quality": self.quality_bars(),
            "timings": {m: round(t, 6) for m, t in self.timings.items()},
            "communities": {m: [c.to_dict() for c in cs]
                            for m, cs in self.results.items()},
        }


def compare_methods(graph, q, k, methods=("global", "local", "codicil",
                                          "acq"), keywords=None,
                    method_params=None):
    """Run each named CS algorithm on ``(q, k)`` and build the report.

    ``method_params`` maps method name -> extra kwargs (e.g. a prebuilt
    CL-tree for ``acq`` or a precomputed partition for ``codicil``).
    Methods that raise are recorded with an empty result rather than
    aborting the whole comparison, mirroring the UI's per-method error
    chips.
    """
    method_params = method_params or {}
    results = {}
    timings = {}
    for name in methods:
        algo = get_cs_algorithm(name)
        params = dict(method_params.get(name, {}))
        start = time.perf_counter()
        try:
            communities = algo(graph, q, k, keywords=keywords, **params)
        except Exception:
            communities = []
        timings[name] = time.perf_counter() - start
        results[name] = communities
    return ComparisonReport(q, k, results, timings)
