"""Whole-graph statistics: the dataset panel.

When a user uploads a graph, C-Explorer's UI summarises it before any
query runs (Figure 3's "Graph database" pane).  This module computes
the summary: size, degree distribution, clustering, core-number
distribution and component structure -- all exact, all O(n + m) except
clustering (which is triangle-counting bound) and all serialisable for
the HTTP layer.
"""

from repro.core.kcore import core_decomposition


def degree_histogram(graph):
    """``{degree: vertex_count}`` over the whole graph."""
    hist = {}
    for v in graph.vertices():
        d = graph.degree(v)
        hist[d] = hist.get(d, 0) + 1
    return hist


def local_clustering(graph, v):
    """Local clustering coefficient of ``v`` (0.0 for degree < 2)."""
    nbrs = list(graph.neighbors(v))
    k = len(nbrs)
    if k < 2:
        return 0.0
    links = 0
    nbr_set = graph.neighbors(v)
    for i, u in enumerate(nbrs):
        for w in nbrs[i + 1:]:
            if w in graph.neighbors(u):
                links += 1
    return 2.0 * links / (k * (k - 1))


def average_clustering(graph, sample=None, seed=0):
    """Mean local clustering coefficient.

    ``sample`` limits the computation to a deterministic random sample
    of vertices (useful beyond ~10^5 vertices); None means exact.
    """
    vertices = list(graph.vertices())
    if not vertices:
        return 0.0
    if sample is not None and sample < len(vertices):
        from repro.util.rng import make_rng
        vertices = make_rng(seed).sample(vertices, sample)
    total = sum(local_clustering(graph, v) for v in vertices)
    return total / len(vertices)


def core_histogram(graph, core=None):
    """``{core_number: vertex_count}`` -- the k-core profile."""
    if core is None:
        core = core_decomposition(graph)
    hist = {}
    for k in core:
        hist[k] = hist.get(k, 0) + 1
    return hist


def graph_summary(graph, clustering_sample=2000):
    """The dataset panel document.

    Returns a JSON-ready dict: sizes, degree stats, clustering, the
    core profile and component structure.
    """
    n = graph.vertex_count
    m = graph.edge_count
    degrees = [graph.degree(v) for v in graph.vertices()]
    components = [len(c) for c in graph.connected_components()]
    core = core_decomposition(graph)
    summary = {
        "vertices": n,
        "edges": m,
        "average_degree": round(2.0 * m / n, 3) if n else 0.0,
        "max_degree": max(degrees) if degrees else 0,
        "isolated_vertices": sum(1 for d in degrees if d == 0),
        "connected_components": len(components),
        "largest_component": max(components) if components else 0,
        "max_core": max(core) if core else 0,
        "core_histogram": {str(k): c
                           for k, c in sorted(core_histogram(
                               graph, core).items())},
        "average_clustering": round(
            average_clustering(graph, sample=clustering_sample), 4),
        "keywords": len(graph.keyword_vocabulary()),
    }
    return summary
