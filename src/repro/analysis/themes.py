"""Theme inference for arbitrary communities.

ACQ communities carry their theme by construction (the shared keyword
set ``L``); communities from structure-only methods (Global, Local,
CODICIL, k-truss) do not.  The UI still wants a "Theme:" line for
them, so this module infers one: the keywords that are both *frequent
inside* the community and *distinctive against* the rest of the graph
(a plain frequency list would return "data, system, ..." for every
community).
"""

import math


def keyword_frequencies(community):
    """``{keyword: fraction of members carrying it}``."""
    graph = community.graph
    counts = {}
    for v in community:
        for w in graph.keywords(v):
            counts[w] = counts.get(w, 0) + 1
    n = len(community)
    return {w: c / n for w, c in counts.items()}


def infer_theme(community, top=8, min_support=0.3, distinctive=True):
    """The community's inferred theme keywords, best first.

    Parameters
    ----------
    min_support:
        Keywords carried by fewer than this fraction of members never
        make the theme.
    distinctive:
        When True (default), keyword scores are support times an
        IDF-style rarity weight over the whole graph, so globally
        ubiquitous words lose to community-specific topics.  When
        False, raw support decides (the naive frequency list).
    """
    graph = community.graph
    support = keyword_frequencies(community)
    candidates = {w: s for w, s in support.items() if s >= min_support}
    if not candidates:
        # Degenerate community; fall back to whatever exists.
        candidates = support
    if not distinctive:
        ranked = sorted(candidates,
                        key=lambda w: (-candidates[w], w))
        return ranked[:top]
    n = graph.vertex_count
    members = community.vertices
    scores = {}
    for w in candidates:
        outside = 0
        # Document frequency outside the community, computed lazily
        # only for candidate words (candidate sets are small).
        for v in graph.vertices():
            if v not in members and w in graph.keywords(v):
                outside += 1
        rarity = math.log(1.0 + n / (1.0 + outside))
        scores[w] = candidates[w] * rarity
    ranked = sorted(scores, key=lambda w: (-scores[w], w))
    return ranked[:top]


def theme_of(community, top=8):
    """The theme the UI displays: shared keywords when the community
    is attributed, inferred keywords otherwise."""
    if community.shared_keywords:
        return community.theme(limit=top)
    return infer_theme(community, top=top)
