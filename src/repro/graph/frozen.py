"""Immutable CSR snapshots of attributed graphs.

:class:`~repro.graph.attributed.AttributedGraph` is built for
mutation: Python ``set`` adjacency gives O(1) edge updates, which the
maintenance path needs.  The structural kernels underneath every
community search (core decomposition, peeling, component BFS, the
CL-tree build) never mutate -- they only walk neighbourhoods -- and
for them the set representation is pure overhead: scattered hash
buckets per vertex, a bounds-checking method call per neighbourhood,
and an object graph that pickles slowly and expensively when a shard
subquery has to cross a process boundary.

:class:`FrozenGraph` is the read-optimised counterpart: a **CSR**
(compressed sparse row) snapshot with two flat arrays --

* ``indptr`` -- ``n + 1`` offsets; vertex ``v``'s neighbourhood is
  ``indices[indptr[v]:indptr[v + 1]]``;
* ``indices`` -- ``2m`` neighbour ids, **sorted** within each
  neighbourhood (deterministic iteration order, binary-searchable
  ``has_edge``).

Properties the rest of the system relies on:

* **immutable** -- mutators raise; every derived quantity (core
  numbers, CL-trees) computed from a given snapshot stays valid for
  the snapshot's lifetime;
* **picklable and compact** -- the arrays are ``array('i')`` buffers
  that pickle as raw bytes, so a shard payload ships to a
  ``multiprocessing`` worker in one cheap memcpy-style hop (see
  :mod:`repro.engine.backends`);
* **kernel-friendly** -- :meth:`FrozenGraph.csr` exposes the flat
  arrays for the pure-Python CSR kernels in :mod:`repro.core.kcore`,
  and :meth:`FrozenGraph.csr_numpy` lazily materialises (and caches)
  int64 NumPy copies for the vectorised level-peeling kernel when
  NumPy is importable -- the fast path the ``bench_engine`` kernel
  trajectory measures;
* **read-API compatible** -- the inspection surface of
  ``AttributedGraph`` (``vertices``, ``neighbors``, ``degree``,
  ``keywords``, ``label``, ``connected_component``, ...) is
  duck-typed, so index builders and read-only algorithms accept either
  representation unchanged.

Use :func:`freeze` (or :meth:`FrozenGraph.from_graph`) to snapshot a
mutable graph; freezing an already frozen graph returns it unchanged.
"""

from array import array
from bisect import bisect_left

from repro.util.errors import GraphFormatError, UnknownVertexError

try:
    import numpy as _np
except ImportError:  # pragma: no cover - the container ships numpy
    _np = None


class FrozenGraph:
    """Immutable CSR snapshot of an attributed graph.

    Build one with :meth:`from_graph`; direct construction takes the
    already-validated flat arrays (``indices`` sorted per vertex).
    """

    __slots__ = ("indptr", "indices", "_m", "_keywords", "_labels",
                 "_label_to_id", "_np_csr", "_postings", "_sidecar")

    def __init__(self, indptr, indices, keywords, labels,
                 sidecar_loader=None):
        self.indptr = indptr
        self.indices = indices
        self._m = len(indices) // 2
        self._keywords = keywords
        self._labels = labels
        self._sidecar = sidecar_loader
        self._label_to_id = None     # built lazily; excluded from pickle
        self._np_csr = None          # cached numpy views, ditto
        self._postings = None        # lazy keyword postings, ditto

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    @classmethod
    def from_graph(cls, graph):
        """Snapshot ``graph`` (any object with the read API) as CSR."""
        if isinstance(graph, cls):
            return graph
        n = graph.vertex_count
        indptr = array("i", [0] * (n + 1))
        for v in range(n):
            indptr[v + 1] = indptr[v] + graph.degree(v)
        indices = array("i", [0] * indptr[n])
        for v in range(n):
            pos = indptr[v]
            for u in sorted(graph.neighbors(v)):
                indices[pos] = u
                pos += 1
        keywords = tuple(graph.keywords(v) for v in range(n))
        labels = tuple(graph.label(v) for v in range(n))
        return cls(indptr, indices, keywords, labels)

    # ------------------------------------------------------------------
    # pickling (drop the lazy caches; they rebuild on demand)
    # ------------------------------------------------------------------
    def __getstate__(self):
        # A zero-copy snapshot (repro.engine.payloads) holds its CSR
        # as memoryviews into a shared-memory segment or mmap; those
        # must not be pickled by reference to a buffer that does not
        # travel, so they materialise back into plain arrays here.
        self._ensure_sidecar()
        indptr, indices = self.indptr, self.indices
        if not isinstance(indptr, array):
            indptr = array("i", indptr)
        if not isinstance(indices, array):
            indices = array("i", indices)
        return (indptr, indices, self._keywords, self._labels)

    def __setstate__(self, state):
        indptr, indices, keywords, labels = state
        self.indptr = indptr
        self.indices = indices
        self._m = len(indices) // 2
        self._keywords = keywords
        self._labels = labels
        self._sidecar = None
        self._label_to_id = None
        self._np_csr = None
        self._postings = None

    # ------------------------------------------------------------------
    # kernel access
    # ------------------------------------------------------------------
    def csr(self):
        """The flat ``(indptr, indices)`` arrays (do not mutate)."""
        return self.indptr, self.indices

    def csr_numpy(self):
        """Cached int64 NumPy copies of ``(indptr, indices)``, or
        ``None`` when NumPy is not importable (pure-Python kernels
        take over)."""
        if _np is None:
            return None
        if self._np_csr is None:
            self._np_csr = (
                _np.asarray(self.indptr, dtype=_np.int64),
                _np.asarray(self.indices, dtype=_np.int64),
            )
        return self._np_csr

    # ------------------------------------------------------------------
    # inspection (the AttributedGraph read API)
    # ------------------------------------------------------------------
    @property
    def vertex_count(self):
        """Number of vertices in the snapshot."""
        return len(self.indptr) - 1

    @property
    def edge_count(self):
        """Number of undirected edges in the snapshot."""
        return self._m

    def __len__(self):
        return len(self.indptr) - 1

    def __contains__(self, v):
        return isinstance(v, int) and 0 <= v < len(self.indptr) - 1

    def vertices(self):
        """Iterate over all vertex ids."""
        return range(len(self.indptr) - 1)

    def edges(self):
        """Yield each undirected edge once as ``(u, v)``, u < v."""
        indptr, indices = self.indptr, self.indices
        for u in range(len(indptr) - 1):
            for v in indices[indptr[u]:indptr[u + 1]]:
                if u < v:
                    yield (u, v)

    def neighbors(self, v):
        """The sorted neighbour ids of ``v`` (a flat array slice)."""
        self._check_vertex(v)
        return self.indices[self.indptr[v]:self.indptr[v + 1]]

    def degree(self, v):
        """Degree of vertex ``v``."""
        self._check_vertex(v)
        return self.indptr[v + 1] - self.indptr[v]

    def has_edge(self, u, v):
        """Whether the edge ``{u, v}`` exists (binary search)."""
        self._check_vertex(u)
        self._check_vertex(v)
        lo, hi = self.indptr[u], self.indptr[u + 1]
        i = bisect_left(self.indices, v, lo, hi)
        return i < hi and self.indices[i] == v

    def keywords(self, v):
        """``W(v)`` as a frozenset of keyword strings."""
        self._check_vertex(v)
        self._ensure_sidecar()
        return self._keywords[v]

    def label(self, v):
        """The label of ``v`` (or ``None``)."""
        self._check_vertex(v)
        self._ensure_sidecar()
        return self._labels[v]

    def display_name(self, v):
        """Label if set, else ``"v<id>"`` -- what the UI shows."""
        label = self.label(v)
        return label if label is not None else "v{}".format(v)

    def id_of(self, label):
        """Resolve a vertex label to its id."""
        try:
            return self._label_map()[label]
        except KeyError:
            raise UnknownVertexError(label) from None

    def has_label(self, label):
        """Whether any vertex carries ``label``."""
        return label in self._label_map()

    def labels(self):
        """A fresh ``{label: id}`` dict (labelled vertices only)."""
        return dict(self._label_map())

    def keyword_vocabulary(self):
        """The set of all keywords appearing on any vertex."""
        self._ensure_sidecar()
        vocab = set()
        for kws in self._keywords:
            vocab |= kws
        return vocab

    def keyword_postings(self):
        """The inverted keyword index ``{keyword: frozenset of ids}``.

        Built lazily in one pass and cached for the snapshot's
        lifetime (it can never go stale).  This is the CSR-side fast
        path for the ACQ family's qualifying-vertex-set computation:
        intersecting a posting with the structural base replaces a
        scan of every base vertex's keyword set.  The returned dict
        and its values must be treated as read-only.
        """
        if self._postings is None:
            self._ensure_sidecar()
            postings = {}
            for v, kws in enumerate(self._keywords):
                for w in kws:
                    postings.setdefault(w, []).append(v)
            self._postings = {w: frozenset(vs)
                              for w, vs in postings.items()}
        return self._postings

    def vertices_with_keyword(self, keyword):
        """All vertex ids carrying ``keyword`` (a frozenset; possibly
        empty)."""
        return self.keyword_postings().get(keyword, frozenset())

    # ------------------------------------------------------------------
    # traversal
    # ------------------------------------------------------------------
    def connected_component(self, v):
        """Vertices reachable from ``v`` (CSR BFS, no set adjacency)."""
        self._check_vertex(v)
        indptr, indices = self.indptr, self.indices
        seen = {v}
        frontier = [v]
        while frontier:
            nxt = []
            for u in frontier:
                for w in indices[indptr[u]:indptr[u + 1]]:
                    if w not in seen:
                        seen.add(w)
                        nxt.append(w)
            frontier = nxt
        return seen

    def connected_components(self):
        """Yield every connected component as a set of vertex ids."""
        seen = set()
        for v in self.vertices():
            if v not in seen:
                comp = self.connected_component(v)
                seen |= comp
                yield comp

    # ------------------------------------------------------------------
    # derived graphs (the read protocol's construction surface)
    # ------------------------------------------------------------------
    def copy(self):
        """A canonical **mutable** copy (the protocol's ``copy``).

        Freezing is explicit (:func:`freeze`); copying a snapshot
        yields the thing a copy is for -- a graph the caller may
        mutate.  Built via :func:`repro.graph.protocol.thaw`, so the
        copy's adjacency layout is canonical (sorted insertion order).
        """
        from repro.graph.protocol import thaw

        return thaw(self)

    def induced_subgraph(self, vertices):
        """The induced frozen subgraph on ``vertices``.

        Mirrors ``AttributedGraph.induced_subgraph``: ids are remapped
        to ``0..k-1`` in sorted-old-id order and ``(subgraph,
        old_to_new)`` is returned -- except the subgraph is another
        :class:`FrozenGraph`, built CSR-to-CSR without materialising
        set adjacency (this is what lets a worker carve one component
        out of a cached whole-graph payload).
        """
        keep = sorted(set(vertices))
        for v in keep:
            self._check_vertex(v)
        old_to_new = {old: new for new, old in enumerate(keep)}
        indptr, indices = self.indptr, self.indices
        sub_indptr = array("i", [0] * (len(keep) + 1))
        sub_indices = array("i")
        for new, old in enumerate(keep):
            for u in indices[indptr[old]:indptr[old + 1]]:
                w = old_to_new.get(u)
                if w is not None:
                    sub_indices.append(w)  # stays sorted: map is monotone
            sub_indptr[new + 1] = len(sub_indices)
        self._ensure_sidecar()
        keywords = tuple(self._keywords[old] for old in keep)
        labels = tuple(self._labels[old] for old in keep)
        return (FrozenGraph(sub_indptr, sub_indices, keywords, labels),
                old_to_new)

    # ------------------------------------------------------------------
    # immutability
    # ------------------------------------------------------------------
    def add_vertex(self, *args, **kwargs):
        """Raise: the snapshot is immutable."""
        raise GraphFormatError("FrozenGraph is immutable")

    def add_edge(self, *args, **kwargs):
        """Raise: the snapshot is immutable."""
        raise GraphFormatError("FrozenGraph is immutable")

    def remove_edge(self, *args, **kwargs):
        """Raise: the snapshot is immutable."""
        raise GraphFormatError("FrozenGraph is immutable")

    def set_keywords(self, *args, **kwargs):
        """Raise: the snapshot is immutable."""
        raise GraphFormatError("FrozenGraph is immutable")

    def relabel(self, *args, **kwargs):
        """Raise: the snapshot is immutable."""
        raise GraphFormatError("FrozenGraph is immutable")

    # ------------------------------------------------------------------
    # misc
    # ------------------------------------------------------------------
    def __repr__(self):
        return "FrozenGraph(n={}, m={})".format(self.vertex_count,
                                                self.edge_count)

    def _label_map(self):
        if self._label_to_id is None:
            self._ensure_sidecar()
            self._label_to_id = {
                label: v for v, label in enumerate(self._labels)
                if label is not None
            }
        return self._label_to_id

    def _ensure_sidecar(self):
        """Materialise lazily-attached vertex attributes.

        A zero-copy snapshot (:mod:`repro.engine.payloads`) defers the
        keyword/label sidecar unpickle until something actually reads
        an attribute -- the structural kernels (core/truss/BFS) never
        do, which is what makes a shared-memory attach near-free."""
        loader = self._sidecar
        if loader is not None:
            self._sidecar = None
            self._keywords, self._labels = loader()

    def _check_vertex(self, v):
        if not (isinstance(v, int) and 0 <= v < len(self.indptr) - 1):
            raise UnknownVertexError(v)


def freeze(graph):
    """CSR snapshot of ``graph`` (identity on an already frozen one)."""
    return FrozenGraph.from_graph(graph)


def neighbor_function(graph):
    """The fastest neighbour accessor for ``graph``.

    Hot kernels call this once per pass instead of branching per
    vertex: frozen graphs get a closure over the flat CSR arrays (no
    per-call bounds check), everything else gets the graph's own
    bound ``neighbors`` method.
    """
    csr = getattr(graph, "csr", None)
    if csr is None:
        return graph.neighbors
    indptr, indices = csr()

    def neighbors(v):
        """The sorted CSR neighbour slice of ``v``."""
        return indices[indptr[v]:indptr[v + 1]]
    return neighbors
