"""Immutable CSR snapshots of attributed graphs.

:class:`~repro.graph.attributed.AttributedGraph` is built for
mutation: Python ``set`` adjacency gives O(1) edge updates, which the
maintenance path needs.  The structural kernels underneath every
community search (core decomposition, peeling, component BFS, the
CL-tree build) never mutate -- they only walk neighbourhoods -- and
for them the set representation is pure overhead: scattered hash
buckets per vertex, a bounds-checking method call per neighbourhood,
and an object graph that pickles slowly and expensively when a shard
subquery has to cross a process boundary.

:class:`FrozenGraph` is the read-optimised counterpart: a **CSR**
(compressed sparse row) snapshot with two flat arrays --

* ``indptr`` -- ``n + 1`` offsets; vertex ``v``'s neighbourhood is
  ``indices[indptr[v]:indptr[v + 1]]``;
* ``indices`` -- ``2m`` neighbour ids, **sorted** within each
  neighbourhood (deterministic iteration order, binary-searchable
  ``has_edge``).

Properties the rest of the system relies on:

* **immutable** -- mutators raise; every derived quantity (core
  numbers, CL-trees) computed from a given snapshot stays valid for
  the snapshot's lifetime;
* **picklable and compact** -- the arrays are ``array('i')`` buffers
  that pickle as raw bytes, so a shard payload ships to a
  ``multiprocessing`` worker in one cheap memcpy-style hop (see
  :mod:`repro.engine.backends`);
* **kernel-friendly** -- :meth:`FrozenGraph.csr` exposes the flat
  arrays for the pure-Python CSR kernels in :mod:`repro.core.kcore`,
  and :meth:`FrozenGraph.csr_numpy` lazily materialises (and caches)
  int64 NumPy copies for the vectorised level-peeling kernel when
  NumPy is importable -- the fast path the ``bench_engine`` kernel
  trajectory measures;
* **read-API compatible** -- the inspection surface of
  ``AttributedGraph`` (``vertices``, ``neighbors``, ``degree``,
  ``keywords``, ``label``, ``connected_component``, ...) is
  duck-typed, so index builders and read-only algorithms accept either
  representation unchanged.

Use :func:`freeze` (or :meth:`FrozenGraph.from_graph`) to snapshot a
mutable graph; freezing an already frozen graph returns it unchanged.
"""

from array import array
from bisect import bisect_left

from repro.util.errors import GraphFormatError, UnknownVertexError

try:
    import numpy as _np
except ImportError:  # pragma: no cover - the container ships numpy
    _np = None


class FrozenGraph:
    """Immutable CSR snapshot of an attributed graph.

    Build one with :meth:`from_graph`; direct construction takes the
    already-validated flat arrays (``indices`` sorted per vertex).
    """

    __slots__ = ("indptr", "indices", "_m", "_keywords", "_labels",
                 "_label_to_id", "_np_csr")

    def __init__(self, indptr, indices, keywords, labels):
        self.indptr = indptr
        self.indices = indices
        self._m = len(indices) // 2
        self._keywords = keywords
        self._labels = labels
        self._label_to_id = None     # built lazily; excluded from pickle
        self._np_csr = None          # cached numpy views, ditto

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    @classmethod
    def from_graph(cls, graph):
        """Snapshot ``graph`` (any object with the read API) as CSR."""
        if isinstance(graph, cls):
            return graph
        n = graph.vertex_count
        indptr = array("i", [0] * (n + 1))
        for v in range(n):
            indptr[v + 1] = indptr[v] + graph.degree(v)
        indices = array("i", [0] * indptr[n])
        for v in range(n):
            pos = indptr[v]
            for u in sorted(graph.neighbors(v)):
                indices[pos] = u
                pos += 1
        keywords = tuple(graph.keywords(v) for v in range(n))
        labels = tuple(graph.label(v) for v in range(n))
        return cls(indptr, indices, keywords, labels)

    # ------------------------------------------------------------------
    # pickling (drop the lazy caches; they rebuild on demand)
    # ------------------------------------------------------------------
    def __getstate__(self):
        return (self.indptr, self.indices, self._keywords, self._labels)

    def __setstate__(self, state):
        indptr, indices, keywords, labels = state
        self.indptr = indptr
        self.indices = indices
        self._m = len(indices) // 2
        self._keywords = keywords
        self._labels = labels
        self._label_to_id = None
        self._np_csr = None

    # ------------------------------------------------------------------
    # kernel access
    # ------------------------------------------------------------------
    def csr(self):
        """The flat ``(indptr, indices)`` arrays (do not mutate)."""
        return self.indptr, self.indices

    def csr_numpy(self):
        """Cached int64 NumPy copies of ``(indptr, indices)``, or
        ``None`` when NumPy is not importable (pure-Python kernels
        take over)."""
        if _np is None:
            return None
        if self._np_csr is None:
            self._np_csr = (
                _np.asarray(self.indptr, dtype=_np.int64),
                _np.asarray(self.indices, dtype=_np.int64),
            )
        return self._np_csr

    # ------------------------------------------------------------------
    # inspection (the AttributedGraph read API)
    # ------------------------------------------------------------------
    @property
    def vertex_count(self):
        return len(self.indptr) - 1

    @property
    def edge_count(self):
        return self._m

    def __len__(self):
        return len(self.indptr) - 1

    def __contains__(self, v):
        return isinstance(v, int) and 0 <= v < len(self.indptr) - 1

    def vertices(self):
        """Iterate over all vertex ids."""
        return range(len(self.indptr) - 1)

    def edges(self):
        """Yield each undirected edge once as ``(u, v)``, u < v."""
        indptr, indices = self.indptr, self.indices
        for u in range(len(indptr) - 1):
            for v in indices[indptr[u]:indptr[u + 1]]:
                if u < v:
                    yield (u, v)

    def neighbors(self, v):
        """The sorted neighbour ids of ``v`` (a flat array slice)."""
        self._check_vertex(v)
        return self.indices[self.indptr[v]:self.indptr[v + 1]]

    def degree(self, v):
        self._check_vertex(v)
        return self.indptr[v + 1] - self.indptr[v]

    def has_edge(self, u, v):
        self._check_vertex(u)
        self._check_vertex(v)
        lo, hi = self.indptr[u], self.indptr[u + 1]
        i = bisect_left(self.indices, v, lo, hi)
        return i < hi and self.indices[i] == v

    def keywords(self, v):
        self._check_vertex(v)
        return self._keywords[v]

    def label(self, v):
        self._check_vertex(v)
        return self._labels[v]

    def display_name(self, v):
        label = self.label(v)
        return label if label is not None else "v{}".format(v)

    def id_of(self, label):
        try:
            return self._label_map()[label]
        except KeyError:
            raise UnknownVertexError(label) from None

    def has_label(self, label):
        return label in self._label_map()

    def labels(self):
        """A fresh ``{label: id}`` dict (labelled vertices only)."""
        return dict(self._label_map())

    def keyword_vocabulary(self):
        vocab = set()
        for kws in self._keywords:
            vocab |= kws
        return vocab

    # ------------------------------------------------------------------
    # traversal
    # ------------------------------------------------------------------
    def connected_component(self, v):
        """Vertices reachable from ``v`` (CSR BFS, no set adjacency)."""
        self._check_vertex(v)
        indptr, indices = self.indptr, self.indices
        seen = {v}
        frontier = [v]
        while frontier:
            nxt = []
            for u in frontier:
                for w in indices[indptr[u]:indptr[u + 1]]:
                    if w not in seen:
                        seen.add(w)
                        nxt.append(w)
            frontier = nxt
        return seen

    def connected_components(self):
        seen = set()
        for v in self.vertices():
            if v not in seen:
                comp = self.connected_component(v)
                seen |= comp
                yield comp

    # ------------------------------------------------------------------
    # immutability
    # ------------------------------------------------------------------
    def add_vertex(self, *args, **kwargs):
        raise GraphFormatError("FrozenGraph is immutable")

    def add_edge(self, *args, **kwargs):
        raise GraphFormatError("FrozenGraph is immutable")

    def remove_edge(self, *args, **kwargs):
        raise GraphFormatError("FrozenGraph is immutable")

    def set_keywords(self, *args, **kwargs):
        raise GraphFormatError("FrozenGraph is immutable")

    def relabel(self, *args, **kwargs):
        raise GraphFormatError("FrozenGraph is immutable")

    # ------------------------------------------------------------------
    # misc
    # ------------------------------------------------------------------
    def __repr__(self):
        return "FrozenGraph(n={}, m={})".format(self.vertex_count,
                                                self.edge_count)

    def _label_map(self):
        if self._label_to_id is None:
            self._label_to_id = {
                label: v for v, label in enumerate(self._labels)
                if label is not None
            }
        return self._label_to_id

    def _check_vertex(self, v):
        if not (isinstance(v, int) and 0 <= v < len(self.indptr) - 1):
            raise UnknownVertexError(v)


def freeze(graph):
    """CSR snapshot of ``graph`` (identity on an already frozen one)."""
    return FrozenGraph.from_graph(graph)


def neighbor_function(graph):
    """The fastest neighbour accessor for ``graph``.

    Hot kernels call this once per pass instead of branching per
    vertex: frozen graphs get a closure over the flat CSR arrays (no
    per-call bounds check), everything else gets the graph's own
    bound ``neighbors`` method.
    """
    csr = getattr(graph, "csr", None)
    if csr is None:
        return graph.neighbors
    indptr, indices = csr()

    def neighbors(v):
        return indices[indptr[v]:indptr[v + 1]]
    return neighbors
