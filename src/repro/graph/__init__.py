"""Attributed-graph substrate.

The paper's server owns its own graph database (Figure 3); this
subpackage is our equivalent.  :class:`AttributedGraph` is the
*mutable* in-memory representation every algorithm in the library runs
on: undirected simple graphs whose vertices carry a label (e.g. an
author name) and a set of keywords (Section 3.2 of the paper,
``W(v)``).  :class:`FrozenGraph` (:func:`freeze`) is its immutable
CSR counterpart: a flat-array snapshot the structural kernels walk
without set lookups and the process execution backend ships across
process boundaries as one compact pickle.
"""

from repro.graph.attributed import AttributedGraph
from repro.graph.export import (
    read_graphml,
    write_community_csv,
    write_graphml,
)
from repro.graph.frozen import FrozenGraph, freeze
from repro.graph.io import (
    load_graph,
    read_edge_list,
    read_graph_json,
    write_edge_list,
    write_graph_json,
)
from repro.graph.validation import validate_graph
from repro.graph.views import SubgraphView

__all__ = [
    "AttributedGraph",
    "FrozenGraph",
    "SubgraphView",
    "freeze",
    "load_graph",
    "read_edge_list",
    "read_graph_json",
    "read_graphml",
    "validate_graph",
    "write_community_csv",
    "write_edge_list",
    "write_graph_json",
    "write_graphml",
]
