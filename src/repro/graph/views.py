"""Read-only induced-subgraph views.

Community-search algorithms constantly ask "what is v's degree *within
this candidate set*?".  Materialising an induced subgraph per candidate
(as :meth:`AttributedGraph.induced_subgraph` does) is O(candidate
edges) each time; a :class:`SubgraphView` instead filters the parent's
adjacency lazily and keeps the parent's vertex ids, which is what the
peeling loops in ``Global`` and the ACQ verification step want.
"""


class SubgraphView:
    """Induced subgraph of an :class:`AttributedGraph` on a vertex set.

    The view holds a *copy* of the member set, so the caller may keep
    mutating its own set; use :meth:`discard` to shrink the view in
    place (peeling).
    """

    def __init__(self, graph, vertices):
        self._graph = graph
        self._members = set(vertices)

    @property
    def graph(self):
        """The underlying full graph."""
        return self._graph

    @property
    def vertex_count(self):
        """Number of vertices in the view."""
        return len(self._members)

    @property
    def edge_count(self):
        """Number of edges induced on the view (each counted once)."""
        return sum(self.degree(v) for v in self._members) // 2

    def __len__(self):
        return len(self._members)

    def __contains__(self, v):
        return v in self._members

    def vertices(self):
        """Iterate over the view's member vertex ids."""
        return iter(self._members)

    def vertex_set(self):
        """Return a copy of the current member set."""
        return set(self._members)

    def neighbors(self, v):
        """Iterate neighbours of ``v`` that are inside the view."""
        if v not in self._members:
            raise KeyError(v)
        members = self._members
        return (u for u in self._graph.neighbors(v) if u in members)

    def degree(self, v):
        """Degree of ``v`` counting only edges inside the view."""
        if v not in self._members:
            raise KeyError(v)
        members = self._members
        return sum(1 for u in self._graph.neighbors(v) if u in members)

    def discard(self, v):
        """Remove ``v`` from the view (peeling step); no-op if absent."""
        self._members.discard(v)

    def edges(self):
        """Yield each edge inside the view once, as ``(u, v)``, u < v."""
        members = self._members
        for u in members:
            for v in self._graph.neighbors(u):
                if u < v and v in members:
                    yield (u, v)

    def connected_component(self, v):
        """Vertices reachable from ``v`` without leaving the view."""
        if v not in self._members:
            raise KeyError(v)
        seen = {v}
        frontier = [v]
        while frontier:
            nxt = []
            for u in frontier:
                for w in self.neighbors(u):
                    if w not in seen:
                        seen.add(w)
                        nxt.append(w)
            frontier = nxt
        return seen

    def connected_components(self):
        """Yield connected components of the view as vertex sets."""
        seen = set()
        for v in list(self._members):
            if v not in seen:
                comp = self.connected_component(v)
                seen |= comp
                yield comp
