"""Graph (de)serialisation -- the ``upload`` API of the paper (Fig. 4).

Two interchange formats are supported:

* **Edge-list format** -- the classic SNAP-style text file.  Lines are
  either ``u v`` (an edge between vertex labels) or, in the attributed
  variant, vertex lines ``#v label kw1 kw2 ...`` followed by edge
  lines.  Comments start with ``%``.  This is the format a public user
  would ``upload`` through the web UI.

* **JSON format** -- a structured document with explicit ``vertices``
  and ``edges`` arrays, used by the HTTP server and for round-tripping
  graphs with full attribute fidelity.
"""

import json

from repro.graph.attributed import AttributedGraph
from repro.util.errors import GraphFormatError

_VERTEX_PREFIX = "#v"
_COMMENT_PREFIX = "%"


def write_edge_list(graph, path):
    """Write ``graph`` to ``path`` in the attributed edge-list format."""
    with open(path, "w", encoding="utf-8") as f:
        f.write("% attributed edge list, {} vertices {} edges\n".format(
            graph.vertex_count, graph.edge_count))
        for v in graph.vertices():
            kws = " ".join(sorted(graph.keywords(v)))
            f.write("{} {} {}\n".format(
                _VERTEX_PREFIX, _escape(graph.display_name(v)), kws).rstrip()
                + "\n")
        for u, v in graph.edges():
            f.write("{} {}\n".format(
                _escape(graph.display_name(u)),
                _escape(graph.display_name(v))))


def read_edge_list(path):
    """Parse the attributed edge-list format into an AttributedGraph.

    Plain two-column edge lists (no ``#v`` lines) are accepted too;
    vertices are then created on first sight with empty keyword sets.
    """
    graph = AttributedGraph()
    with open(path, "r", encoding="utf-8") as f:
        for lineno, raw in enumerate(f, start=1):
            line = raw.strip()
            if not line or line.startswith(_COMMENT_PREFIX):
                continue
            if line.startswith(_VERTEX_PREFIX):
                parts = line.split()
                if len(parts) < 2:
                    raise GraphFormatError(
                        "line {}: vertex line needs a label".format(lineno))
                label = _unescape(parts[1])
                keywords = [_unescape(p) for p in parts[2:]]
                if graph.has_label(label):
                    graph.set_keywords(graph.id_of(label), keywords)
                else:
                    graph.add_vertex(label, keywords)
                continue
            parts = line.split()
            if len(parts) != 2:
                raise GraphFormatError(
                    "line {}: expected 'u v', got {!r}".format(lineno, line))
            u = graph.ensure_vertex(_unescape(parts[0]))
            v = graph.ensure_vertex(_unescape(parts[1]))
            if u == v:
                raise GraphFormatError(
                    "line {}: self-loop on {!r}".format(lineno, parts[0]))
            graph.add_edge(u, v)
    return graph


def write_graph_json(graph, path=None):
    """Serialise ``graph`` to JSON; returns the document as a dict.

    When ``path`` is given the document is also written there.
    """
    doc = {
        "format": "c-explorer-graph",
        "version": 1,
        "vertices": [
            {
                "id": v,
                "label": graph.label(v),
                "keywords": sorted(graph.keywords(v)),
            }
            for v in graph.vertices()
        ],
        "edges": [[u, v] for u, v in graph.edges()],
    }
    if path is not None:
        with open(path, "w", encoding="utf-8") as f:
            json.dump(doc, f, indent=1)
    return doc


def read_graph_json(source):
    """Parse the JSON graph document (dict, JSON string, or file path)."""
    if isinstance(source, dict):
        doc = source
    elif isinstance(source, str) and source.lstrip().startswith("{"):
        doc = json.loads(source)
    else:
        with open(source, "r", encoding="utf-8") as f:
            doc = json.load(f)
    if doc.get("format") != "c-explorer-graph":
        raise GraphFormatError("not a c-explorer-graph JSON document")
    vertices = doc.get("vertices", [])
    graph = AttributedGraph()
    id_map = {}
    for entry in vertices:
        vid = graph.add_vertex(entry.get("label"), entry.get("keywords", ()))
        id_map[entry["id"]] = vid
    for edge in doc.get("edges", []):
        if len(edge) != 2:
            raise GraphFormatError("bad edge entry: {!r}".format(edge))
        u, v = edge
        if u not in id_map or v not in id_map:
            raise GraphFormatError("edge references unknown vertex: "
                                   "{!r}".format(edge))
        graph.add_edge(id_map[u], id_map[v])
    return graph


def load_graph(path):
    """Load a graph from ``path``, dispatching on extension.

    ``.json`` files go through :func:`read_graph_json`, everything else
    through :func:`read_edge_list`.  This is the implementation behind
    ``CExplorer.upload`` (Fig. 4 of the paper).
    """
    if str(path).endswith(".json"):
        return read_graph_json(path)
    return read_edge_list(path)


def _escape(token):
    """Encode spaces in labels so they survive whitespace tokenising."""
    return token.replace("\\", "\\\\").replace(" ", "\\_")


def _unescape(token):
    out = []
    i = 0
    while i < len(token):
        ch = token[i]
        if ch == "\\" and i + 1 < len(token):
            nxt = token[i + 1]
            out.append(" " if nxt == "_" else nxt)
            i += 2
        else:
            out.append(ch)
            i += 1
    return "".join(out)
