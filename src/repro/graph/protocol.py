"""The graph **read protocol**: the one inspection surface every
algorithm is written against.

Two graph representations coexist in the system --
:class:`~repro.graph.attributed.AttributedGraph` (mutable set
adjacency, what maintenance needs) and
:class:`~repro.graph.frozen.FrozenGraph` (immutable CSR snapshot, what
the kernels and the process backend need).  Every registered CS/CD
algorithm must accept *either*, which is what lets whole queries run
end-to-end inside worker processes against cached frozen payloads
instead of shipping candidate sets back to the parent (the
factorised-execution lesson: pick one immutable representation and
make every operator run on it).

This module pins that contract down:

* :data:`READ_PROTOCOL` -- the attribute names a conforming graph must
  expose.  The semantics are ``AttributedGraph``'s documented read
  API; ``FrozenGraph`` duck-types it over flat CSR arrays.
* :func:`missing_protocol_methods` / :func:`supports_read_protocol` /
  :func:`require_read_protocol` -- conformance probes (the equivalence
  suite checks both representations against them).
* :func:`thaw` -- a **canonical mutable copy** of any protocol graph:
  vertices in id order, edges inserted in sorted ``(u, v)`` order.
  Algorithms that must mutate a working copy (Newman-Girvan peels
  edges off) thaw their input instead of calling ``copy()`` on it, so
  the working graph's adjacency -- and therefore every
  iteration-order-dependent tie-break downstream -- is identical no
  matter which representation the query arrived on.

Protocol fine print the algorithms rely on:

* ``neighbors(v)`` returns an *iterable* of neighbour ids supporting
  ``len``/``in`` -- a ``set`` on the mutable graph, a sorted flat
  array slice on the frozen one.  Code needing set operations builds
  its own (``set(graph.neighbors(v))`` or
  ``members.intersection(graph.neighbors(v))``); ``&`` on the raw
  return value is **not** part of the protocol.
* ``copy()`` returns a *mutable* equivalent graph -- freezing is
  explicit (:func:`repro.graph.frozen.freeze`), thawing implicit.
* results must not depend on adjacency iteration order: anything
  order-sensitive (stable-sort tie-breaks, float accumulation under
  weights, RNG interleaving) must canonicalise first, because the two
  representations iterate neighbourhoods differently.
"""

from repro.util.errors import GraphFormatError

# The read surface shared by AttributedGraph and FrozenGraph.  Write
# methods (add_edge & co.) are deliberately absent: FrozenGraph keeps
# them as raising stubs, and no registered algorithm may call them on
# its input graph.
READ_PROTOCOL = (
    "vertex_count",
    "edge_count",
    "vertices",
    "edges",
    "neighbors",
    "degree",
    "has_edge",
    "keywords",
    "label",
    "display_name",
    "id_of",
    "has_label",
    "labels",
    "keyword_vocabulary",
    "connected_component",
    "connected_components",
    "induced_subgraph",
    "copy",
    "__contains__",
    "__len__",
)


def missing_protocol_methods(graph):
    """The protocol attributes ``graph`` does not expose (sorted)."""
    return sorted(name for name in READ_PROTOCOL
                  if not hasattr(graph, name))


def supports_read_protocol(graph):
    """Whether ``graph`` exposes the full read protocol."""
    return not missing_protocol_methods(graph)


def require_read_protocol(graph):
    """Raise :class:`GraphFormatError` naming any missing attributes."""
    missing = missing_protocol_methods(graph)
    if missing:
        raise GraphFormatError(
            "{} does not satisfy the graph read protocol; missing: {}"
            .format(type(graph).__name__, ", ".join(missing)))
    return graph


def thaw(graph):
    """A canonical mutable :class:`AttributedGraph` copy of ``graph``.

    Vertices are added in id order and edges in sorted ``(u, v)``
    order, so the copy's set-adjacency layout -- and every
    iteration-order-dependent decision made over it -- is a pure
    function of the graph's content, not of the representation (or
    mutation history) it arrived in.
    """
    from repro.graph.attributed import AttributedGraph

    out = AttributedGraph()
    for v in graph.vertices():
        out.add_vertex(graph.label(v), graph.keywords(v))
    for u, v in sorted(graph.edges()):
        out.add_edge(u, v)
    return out
