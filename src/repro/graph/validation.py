"""Structural sanity checks for uploaded graphs.

The server validates every uploaded graph before indexing it; the
checks here catch representation bugs (asymmetric adjacency, stale
edge counters) as well as user-data problems worth reporting (isolated
vertices, empty keyword sets).
"""

from repro.util.errors import GraphFormatError


def validate_graph(graph, require_keywords=False):
    """Validate internal consistency of ``graph``.

    Raises :class:`GraphFormatError` on hard violations.  Returns a
    report dict with soft statistics the UI can surface::

        {"isolated_vertices": int, "vertices_without_keywords": int}
    """
    m = 0
    isolated = 0
    missing_kw = 0
    for v in graph.vertices():
        nbrs = graph.neighbors(v)
        if v in nbrs:
            raise GraphFormatError("self-loop on vertex {}".format(v))
        for u in nbrs:
            if u not in graph:
                raise GraphFormatError(
                    "vertex {} links to unknown vertex {}".format(v, u))
            if v not in graph.neighbors(u):
                raise GraphFormatError(
                    "asymmetric adjacency between {} and {}".format(v, u))
        m += len(nbrs)
        if not nbrs:
            isolated += 1
        if not graph.keywords(v):
            missing_kw += 1
    if m != 2 * graph.edge_count:
        raise GraphFormatError(
            "edge counter {} inconsistent with adjacency ({} half-edges)"
            .format(graph.edge_count, m))
    if require_keywords and missing_kw:
        raise GraphFormatError(
            "{} vertices have empty keyword sets".format(missing_kw))
    return {
        "isolated_vertices": isolated,
        "vertices_without_keywords": missing_kw,
    }
