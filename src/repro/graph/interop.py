"""Optional NetworkX interoperability.

The library itself never depends on NetworkX (its graph substrate is
:class:`AttributedGraph`), but downstream users live in the NetworkX
ecosystem; these converters let them move graphs in and out.  Imports
are deferred so the module works (and fails with a clear message) on
installations without networkx.
"""

from repro.graph.attributed import AttributedGraph
from repro.util.errors import GraphFormatError


def _require_networkx():
    try:
        import networkx
    except ImportError as exc:  # pragma: no cover - env without nx
        raise ImportError(
            "networkx is required for graph interop; install it or use "
            "the native edge-list/JSON formats in repro.graph.io"
        ) from exc
    return networkx


def to_networkx(graph):
    """Convert an :class:`AttributedGraph` to ``networkx.Graph``.

    Vertex ids become node ids; labels land in the ``label`` node
    attribute and keyword sets in ``keywords`` (as sorted lists, so
    the result serialises cleanly).
    """
    nx = _require_networkx()
    out = nx.Graph()
    for v in graph.vertices():
        out.add_node(v, label=graph.label(v),
                     keywords=sorted(graph.keywords(v)))
    out.add_edges_from(graph.edges())
    return out


def from_networkx(nxgraph):
    """Convert an undirected ``networkx.Graph`` to AttributedGraph.

    Node ids may be arbitrary hashables; they are mapped to dense int
    ids, with the original id kept as the label when no ``label``
    attribute is present.  ``keywords`` node attributes (iterables of
    strings) carry over.  Directed or multi-graphs are rejected.
    """
    nx = _require_networkx()
    if nxgraph.is_directed():
        raise GraphFormatError("directed graphs are not supported")
    if nxgraph.is_multigraph():
        raise GraphFormatError("multigraphs are not supported")
    graph = AttributedGraph()
    id_map = {}
    for node in nxgraph.nodes():
        data = nxgraph.nodes[node]
        label = data.get("label")
        if label is None:
            label = str(node)
        keywords = data.get("keywords", ())
        id_map[node] = graph.add_vertex(label, keywords)
    for u, v in nxgraph.edges():
        if u == v:
            continue  # drop self-loops rather than erroring
        graph.add_edge(id_map[u], id_map[v])
    return graph
