"""The attributed graph ``G(V, E)`` of the paper (Section 3.2).

Vertices are dense integer ids ``0..n-1``.  Each vertex optionally has
a *label* (the author name shown in the C-Explorer UI) and a keyword
set ``W(v)``.  Edges are undirected and simple; self-loops are
rejected, parallel edges are collapsed.

The structure is a plain adjacency-set representation: Python sets give
O(1) membership/degree and cheap neighbourhood iteration, which is what
the peeling algorithms (k-core, Global) and the traversal algorithms
(Local, ACQ candidate verification) need.  Dense int ids let the
decomposition routines use flat lists instead of dicts on the hot path.
"""

from repro.util.errors import GraphFormatError, UnknownVertexError


class AttributedGraph:
    """Mutable undirected attributed graph.

    Parameters
    ----------
    directed:
        Present for API clarity only; C-Explorer works on undirected
        graphs and ``directed=True`` raises ``GraphFormatError``.
    """

    def __init__(self, directed=False):
        if directed:
            raise GraphFormatError("C-Explorer operates on undirected graphs")
        self._adj = []        # list[set[int]] adjacency
        self._keywords = []   # list[frozenset[str]]
        self._labels = []     # list[str | None]
        self._label_to_id = {}
        self._m = 0

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    def add_vertex(self, label=None, keywords=()):
        """Add a vertex, returning its integer id.

        ``label`` must be unique when given; re-adding an existing label
        raises ``GraphFormatError`` (use :meth:`ensure_vertex` for
        get-or-create behaviour).
        """
        if label is not None and label in self._label_to_id:
            raise GraphFormatError(
                "duplicate vertex label: {!r}".format(label))
        vid = len(self._adj)
        self._adj.append(set())
        self._keywords.append(frozenset(keywords))
        self._labels.append(label)
        if label is not None:
            self._label_to_id[label] = vid
        return vid

    def ensure_vertex(self, label, keywords=()):
        """Return the id for ``label``, creating the vertex if needed."""
        vid = self._label_to_id.get(label)
        if vid is None:
            vid = self.add_vertex(label, keywords)
        return vid

    def add_edge(self, u, v):
        """Add the undirected edge ``{u, v}``; returns True if new."""
        self._check_vertex(u)
        self._check_vertex(v)
        if u == v:
            raise GraphFormatError("self-loop on vertex {}".format(u))
        if v in self._adj[u]:
            return False
        self._adj[u].add(v)
        self._adj[v].add(u)
        self._m += 1
        return True

    def remove_edge(self, u, v):
        """Remove the edge ``{u, v}``; raises ``KeyError`` if absent."""
        self._adj[u].remove(v)
        self._adj[v].remove(u)
        self._m -= 1

    def set_keywords(self, v, keywords):
        """Replace the keyword set ``W(v)``."""
        self._check_vertex(v)
        self._keywords[v] = frozenset(keywords)

    def relabel(self, v, label):
        """Assign a (new) unique label to vertex ``v``."""
        self._check_vertex(v)
        if label in self._label_to_id and self._label_to_id[label] != v:
            raise GraphFormatError(
                "duplicate vertex label: {!r}".format(label))
        old = self._labels[v]
        if old is not None:
            del self._label_to_id[old]
        self._labels[v] = label
        if label is not None:
            self._label_to_id[label] = v

    # ------------------------------------------------------------------
    # inspection
    # ------------------------------------------------------------------
    @property
    def vertex_count(self):
        """Number of vertices."""
        return len(self._adj)

    @property
    def edge_count(self):
        """Number of undirected edges."""
        return self._m

    def __len__(self):
        return len(self._adj)

    def __contains__(self, v):
        return isinstance(v, int) and 0 <= v < len(self._adj)

    def vertices(self):
        """Iterate over all vertex ids."""
        return range(len(self._adj))

    def edges(self):
        """Yield each undirected edge once as an ``(u, v)`` pair, u < v."""
        for u, nbrs in enumerate(self._adj):
            for v in nbrs:
                if u < v:
                    yield (u, v)

    def has_edge(self, u, v):
        """Whether the edge ``{u, v}`` exists."""
        self._check_vertex(u)
        self._check_vertex(v)
        return v in self._adj[u]

    def neighbors(self, v):
        """Return the (live) neighbour set of ``v``.

        The returned set is the internal one; callers must not mutate
        it.  Algorithms that shrink neighbourhoods work on copies or on
        a :class:`~repro.graph.views.SubgraphView`.
        """
        self._check_vertex(v)
        return self._adj[v]

    def degree(self, v):
        """Degree of vertex ``v``."""
        self._check_vertex(v)
        return len(self._adj[v])

    def keywords(self, v):
        """Return ``W(v)`` as a frozenset of keyword strings."""
        self._check_vertex(v)
        return self._keywords[v]

    def label(self, v):
        """The label of ``v`` (or ``None``)."""
        self._check_vertex(v)
        return self._labels[v]

    def display_name(self, v):
        """Label if set, else ``"v<id>"`` -- what the UI would show."""
        label = self.label(v)
        return label if label is not None else "v{}".format(v)

    def id_of(self, label):
        """Resolve a vertex label to its id.

        Raises :class:`UnknownVertexError` for unknown labels -- the
        error the UI surfaces when a queried author does not exist.
        """
        try:
            return self._label_to_id[label]
        except KeyError:
            raise UnknownVertexError(label) from None

    def has_label(self, label):
        """Whether any vertex carries ``label``."""
        return label in self._label_to_id

    def labels(self):
        """Return a read-only view of ``{label: id}``."""
        return dict(self._label_to_id)

    # ------------------------------------------------------------------
    # derived graphs
    # ------------------------------------------------------------------
    def copy(self):
        """Deep-copy the graph (labels and keywords shared, sets copied)."""
        g = AttributedGraph()
        g._adj = [set(nbrs) for nbrs in self._adj]
        g._keywords = list(self._keywords)
        g._labels = list(self._labels)
        g._label_to_id = dict(self._label_to_id)
        g._m = self._m
        return g

    def induced_subgraph(self, vertices):
        """Materialise the induced subgraph on ``vertices``.

        Vertex ids are remapped to ``0..k-1``; the mapping is returned
        alongside so communities can be translated back:
        ``(subgraph, old_to_new)``.  Labels and keywords carry over.
        """
        keep = sorted(set(vertices))
        for v in keep:
            self._check_vertex(v)
        old_to_new = {old: new for new, old in enumerate(keep)}
        sub = AttributedGraph()
        for old in keep:
            sub.add_vertex(self._labels[old], self._keywords[old])
        for old in keep:
            u = old_to_new[old]
            for nbr in self._adj[old]:
                w = old_to_new.get(nbr)
                if w is not None and u < w:
                    sub.add_edge(u, w)
        return sub, old_to_new

    def connected_component(self, v):
        """Return the set of vertices reachable from ``v`` (BFS)."""
        self._check_vertex(v)
        seen = {v}
        frontier = [v]
        while frontier:
            nxt = []
            for u in frontier:
                for w in self._adj[u]:
                    if w not in seen:
                        seen.add(w)
                        nxt.append(w)
            frontier = nxt
        return seen

    def connected_components(self):
        """Yield every connected component as a set of vertex ids."""
        seen = set()
        for v in self.vertices():
            if v not in seen:
                comp = self.connected_component(v)
                seen |= comp
                yield comp

    # ------------------------------------------------------------------
    # misc
    # ------------------------------------------------------------------
    def keyword_vocabulary(self):
        """Return the set of all keywords appearing on any vertex."""
        vocab = set()
        for kws in self._keywords:
            vocab |= kws
        return vocab

    def __repr__(self):
        return "AttributedGraph(n={}, m={})".format(
            self.vertex_count, self.edge_count
        )

    def _check_vertex(self, v):
        if not (isinstance(v, int) and 0 <= v < len(self._adj)):
            raise UnknownVertexError(v)
