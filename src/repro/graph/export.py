"""Exports: taking graphs and communities out of the system.

The demo lets users save a community view; besides the SVG renderer
(:mod:`repro.viz.render`) this module writes interchange files other
tools read:

* **GraphML** -- hand-rolled minimal XML (node labels, keyword lists
  joined by ``|``, a ``community`` flag when exporting a community in
  graph context), readable by Gephi/NetworkX/igraph;
* **CSV** -- an edge list plus a vertex table, the format spreadsheets
  and pandas users expect.

:func:`read_graphml` closes the loop: GraphML files produced here (or
by external tools following the same attribute conventions) load back
into :class:`AttributedGraph`.
"""

import xml.etree.ElementTree as ET
from xml.sax.saxutils import escape

from repro.graph.attributed import AttributedGraph
from repro.util.errors import GraphFormatError

_NS = "{http://graphml.graphdrawing.org/xmlns}"


def community_subgraph(community):
    """Materialise the community as its own AttributedGraph."""
    sub, _ = community.graph.induced_subgraph(community.vertices)
    return sub


def write_graphml(graph, path, community=None):
    """Write ``graph`` as GraphML; returns ``path``.

    When ``community`` (a vertex set or Community) is given, each node
    carries a boolean ``community`` attribute marking membership --
    handy for colouring the neighbourhood context in external tools.
    """
    members = None
    if community is not None:
        members = set(community.vertices
                      if hasattr(community, "vertices") else community)
    lines = [
        '<?xml version="1.0" encoding="UTF-8"?>',
        '<graphml xmlns="http://graphml.graphdrawing.org/xmlns">',
        '<key id="d0" for="node" attr.name="label" attr.type="string"/>',
        '<key id="d1" for="node" attr.name="keywords"'
        ' attr.type="string"/>',
    ]
    if members is not None:
        lines.append('<key id="d2" for="node" attr.name="community"'
                     ' attr.type="boolean"/>')
    lines.append('<graph id="G" edgedefault="undirected">')
    for v in graph.vertices():
        lines.append('<node id="n{}">'.format(v))
        lines.append('  <data key="d0">{}</data>'.format(
            escape(graph.display_name(v))))
        lines.append('  <data key="d1">{}</data>'.format(
            escape("|".join(sorted(graph.keywords(v))))))
        if members is not None:
            lines.append('  <data key="d2">{}</data>'.format(
                "true" if v in members else "false"))
        lines.append('</node>')
    for i, (u, v) in enumerate(graph.edges()):
        lines.append('<edge id="e{}" source="n{}" target="n{}"/>'.format(
            i, u, v))
    lines.append('</graph>')
    lines.append('</graphml>')
    with open(path, "w", encoding="utf-8") as f:
        f.write("\n".join(lines) + "\n")
    return path


def read_graphml(path):
    """Parse a GraphML file into an :class:`AttributedGraph`.

    Node attributes named ``label`` and ``keywords`` (pipe-joined, as
    :func:`write_graphml` emits) are honoured; other attributes are
    ignored.  Directed graphs are rejected.
    """
    try:
        tree = ET.parse(path)
    except ET.ParseError as exc:
        raise GraphFormatError("invalid GraphML: {}".format(exc)) from exc
    root = tree.getroot()
    graph_el = root.find(_NS + "graph")
    if graph_el is None:
        raise GraphFormatError("no <graph> element found")
    if graph_el.get("edgedefault", "undirected") == "directed":
        raise GraphFormatError("directed GraphML is not supported")
    # Map key ids to attribute names.
    key_names = {}
    for key in root.findall(_NS + "key"):
        key_names[key.get("id")] = key.get("attr.name")
    graph = AttributedGraph()
    id_map = {}
    for node in graph_el.findall(_NS + "node"):
        node_id = node.get("id")
        label = None
        keywords = ()
        for data in node.findall(_NS + "data"):
            name = key_names.get(data.get("key"))
            if name == "label":
                label = data.text or ""
            elif name == "keywords" and data.text:
                keywords = [w for w in data.text.split("|") if w]
        if label is None:
            label = node_id
        if graph.has_label(label):
            label = "{} ({})".format(label, node_id)
        id_map[node_id] = graph.add_vertex(label, keywords)
    for edge in graph_el.findall(_NS + "edge"):
        source = id_map.get(edge.get("source"))
        target = id_map.get(edge.get("target"))
        if source is None or target is None:
            raise GraphFormatError(
                "edge references unknown node: {} -> {}".format(
                    edge.get("source"), edge.get("target")))
        if source != target and not graph.has_edge(source, target):
            graph.add_edge(source, target)
    return graph


def write_community_csv(community, edge_path, vertex_path=None):
    """Write a community as CSV files; returns ``(edge_path,
    vertex_path)``.

    The edge file has ``source,target`` rows using display names; the
    optional vertex file has ``name,internal_degree,keywords`` rows.
    Names containing commas or quotes are quoted per RFC 4180.
    """
    graph = community.graph

    def cell(text):
        """Quote one CSV cell per RFC 4180 when needed."""
        text = str(text)
        if any(ch in text for ch in ',"\n'):
            return '"' + text.replace('"', '""') + '"'
        return text

    with open(edge_path, "w", encoding="utf-8") as f:
        f.write("source,target\n")
        for u, v in sorted(community.induced_edges()):
            f.write("{},{}\n".format(cell(graph.display_name(u)),
                                     cell(graph.display_name(v))))
    if vertex_path is not None:
        with open(vertex_path, "w", encoding="utf-8") as f:
            f.write("name,internal_degree,keywords\n")
            for v in sorted(community.vertices,
                            key=graph.display_name):
                f.write("{},{},{}\n".format(
                    cell(graph.display_name(v)),
                    community.internal_degree(v),
                    cell("|".join(sorted(graph.keywords(v))))))
    return edge_path, vertex_path
