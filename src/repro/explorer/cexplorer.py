"""The ``CExplorer`` facade: the paper's API (Section 3.1, Figure 4).

The Java interface the paper publishes is::

    public interface CExplorer {
        public void upload(String filePath);
        public List<Community> search(CSAlgorithm algo, Query query);
        public List<Community> detect(CDAlgorithm algo);
        public void analyze(Community community);
        public void display(Community community);
    }

This class is its Python equivalent, extended with the surrounding
system behaviour the paper describes: graph management (several named
graphs can be uploaded, Figure 3 shows Facebook and DBLP side by
side), versioned CL-tree indexing per graph through the engine's
:class:`~repro.engine.index_manager.IndexManager`, the profile store,
and keyword/degree suggestions for the left panel of the UI.

Execution runs through :mod:`repro.engine`: searches are planned
(:mod:`repro.engine.plans`), cached in the engine's
:class:`~repro.engine.cache.ResultCache` (with selective invalidation
when maintenance mutates a graph), and the facade's
:attr:`CExplorer.engine` exposes the bounded worker pool the server
submits concurrent queries through.
"""

import os

from repro.algorithms.registry import (
    get_cd_algorithm,
    get_cs_algorithm,
    list_cd_algorithms,
    list_cs_algorithms,
)
from repro.analysis.comparison import compare_methods
from repro.analysis.graph_stats import graph_summary
from repro.analysis.metrics import cmf, community_conductance, \
    community_density, cpj
from repro.engine import payloads as payload_plane
from repro.engine import tracing
from repro.engine.executor import QueryEngine
from repro.engine.plans import plan_search
from repro.engine.sharding import ShardedIndexManager
from repro.explorer.autocomplete import NameIndex
from repro.explorer.profiles import ProfileStore
from repro.graph.io import load_graph
from repro.graph.validation import validate_graph
from repro.util.errors import CExplorerError, EngineError, QueryError
from repro.viz.layout import circular_layout, ego_layout, spring_layout
from repro.viz.render import render_ascii, render_svg


class _GraphEntry:
    """A registered graph plus its lazily built derived structures.

    Index structures (core numbers, the CL-tree) live in the engine's
    :class:`~repro.engine.index_manager.IndexManager`; only the purely
    presentational lazies stay here.
    """

    __slots__ = ("name", "graph", "names", "summary")

    def __init__(self, name, graph):
        self.name = name
        self.graph = graph
        self.names = None
        self.summary = None


class CExplorer:
    """The C-Explorer system facade.

    >>> from repro.datasets import generate_dblp_graph
    >>> explorer = CExplorer()
    >>> explorer.add_graph("dblp", generate_dblp_graph())
    'dblp'
    >>> communities = explorer.search("acq", "Jim Gray", k=4)
    """

    def __init__(self, profiles=None, cache_size=256, workers=2,
                 max_queue=64, backend="thread", faults=None,
                 store_dir=None):
        self._graphs = {}
        self._current = None
        self.profiles = profiles if profiles is not None else ProfileStore()
        # Sharding-aware: graphs registered with shards=1 (the
        # default) behave exactly as under the plain IndexManager.
        self.indexes = ShardedIndexManager()
        # Persistent warm store: ``store_dir`` (or REPRO_STORE_DIR)
        # names an on-disk :class:`~repro.engine.payloads.GraphStore`.
        # Registered graphs whose fingerprint matches a stored
        # snapshot restart warm -- the frozen payload mmaps in and the
        # serialised CL-tree installs without a rebuild -- and the
        # engine's result cache spills evicted entries there.
        if store_dir is None:
            store_dir = os.environ.get(payload_plane.ENV_STORE)
        self.store = payload_plane.GraphStore(store_dir) \
            if store_dir else None
        self._persisted = {}
        # ``backend="process"`` runs shard subqueries and CL-tree
        # builds in a multiprocessing pool over frozen CSR snapshots
        # (see repro.engine.backends); results are identical to the
        # default thread backend.  ``faults`` installs a seeded
        # fault-injection plan (see repro.engine.faults) for chaos
        # testing; None reads REPRO_FAULT_PLAN from the environment.
        self.engine = QueryEngine(explorer=self, workers=workers,
                                  max_queue=max_queue,
                                  cache_size=cache_size,
                                  index_manager=self.indexes,
                                  backend=backend,
                                  faults=faults,
                                  store=self.store)
        # The engine owns the result cache; exposed here because the
        # facade has always published ``explorer.cache``.
        self.cache = self.engine.cache

    # ------------------------------------------------------------------
    # graph management ("upload" in the paper API)
    # ------------------------------------------------------------------
    def upload(self, file_path, name=None, shards=1, partitioner="hash"):
        """Load a graph file (edge list or JSON) and select it.

        Returns the registered graph name.  The paper API's
        ``upload(String filePath)``, extended with the shard count the
        server's upload endpoint forwards.
        """
        graph = load_graph(file_path)
        validate_graph(graph)
        if name is None:
            name = str(file_path).rsplit("/", 1)[-1].rsplit(".", 1)[0]
        return self.add_graph(name, graph, shards=shards,
                              partitioner=partitioner)

    def add_graph(self, name, graph, select=True, build="lazy",
                  shards=1, partitioner="hash"):
        """Register an in-memory graph under ``name``.

        Re-registering a name replaces the graph, bumps its index
        version, and invalidates every cached result for it.  ``build``
        picks the index policy: ``"lazy"`` (first query pays),
        ``"eager"`` (build-on-upload), or ``"background"`` (a builder
        thread runs while queries fall back to index-free plans).

        ``shards > 1`` registers the graph partitioned: one versioned
        CL-tree/k-core index per shard, and shardable searches fan
        their structural phase out over the engine's worker pool
        (``partitioner`` is ``"hash"`` or ``"greedy"``).  ``shards=1``
        keeps the exact unsharded execution path.
        """
        # Register indexes first: a rejected name (e.g. one colliding
        # with the shard-entry namespace) must not leave a phantom
        # half-registered graph behind.  Registration notifies the
        # engine, which evicts the graph's cached results and memoized
        # subproblems.
        self.indexes.register(name, graph, build=build, shards=shards,
                              partitioner=partitioner)
        self._graphs[name] = _GraphEntry(name, graph)
        if self.store is not None and shards == 1:
            self._warm_restore(name, graph)
        if select or self._current is None:
            self._current = name
        return name

    def _warm_restore(self, name, graph):
        """Warm restart from the persistent store: when the stored
        snapshot's fingerprint matches the live graph, adopt the
        mmap-loaded frozen payload (workers attach it without a
        freeze) and install the serialised CL-tree without a rebuild.
        Any mismatch or read error simply leaves the cold path --
        correctness never depends on the store.
        """
        from repro.graph.frozen import FrozenGraph
        try:
            frozen = FrozenGraph.from_graph(graph)
            if not self.store.matches(name, frozen):
                return
            mapped = self.store.load_frozen(name)
            self.indexes.seed_payload(name, mapped)
            if self.store.has_cltree(name):
                cltree = self.store.load_cltree(name, graph)
                # Compatibility: callers historically read build time
                # off the tree; a restored tree paid none.
                cltree.build_seconds = 0.0
                self.indexes.install(name, cltree,
                                     core=list(cltree.core))
            self._persisted[name] = self.indexes.version(name)
            self.engine.stats.count("warm_restores")
        except Exception:
            # Deliberately broad: a torn artefact, a format drift, a
            # filesystem error -- the upload must still succeed cold.
            self.engine.stats.count("warm_restore_failures")

    def shards(self, name=None):
        """How many shards a graph is registered as (1 = unsharded)."""
        if name is None:
            name = self._require_current()
        return self.indexes.shards(name)

    def select_graph(self, name):
        """Switch the active graph (the UI's dataset picker)."""
        if name not in self._graphs:
            raise CExplorerError("no graph named {!r} uploaded".format(name))
        self._current = name

    def graph_names(self):
        return sorted(self._graphs)

    @property
    def graph(self):
        """The active graph."""
        if self._current is None:
            raise CExplorerError("no graph uploaded yet")
        return self._graphs[self._current].graph

    # ------------------------------------------------------------------
    # indexing module
    # ------------------------------------------------------------------
    def index(self, rebuild=False):
        """The CL-tree of the active graph, built on first use.

        Delegates to the engine's versioned
        :class:`~repro.engine.index_manager.IndexManager`; maintenance
        updates mark the snapshot stale so the next call rebuilds.
        With a persistent store attached, a freshly built tree is
        written through (frozen payload + serialised CL-tree) so the
        next process restarts warm.
        """
        name = self._require_current()
        cltree = self.indexes.snapshot(name, rebuild=rebuild).cltree
        self._persist_index(name, cltree)
        return cltree

    def _persist_index(self, name, cltree):
        """Write the built index through to the persistent store,
        once per graph version (unsharded graphs only -- the store
        keeps whole-graph snapshots)."""
        if self.store is None or self.indexes.shards(name) != 1:
            return
        try:
            version = self.indexes.version(name)
            if self._persisted.get(name) == version:
                return
            payload, _ = self.indexes.full_payload(name)
            self.store.save(name, payload.frozen, cltree)
            self._persisted[name] = version
            self.engine.stats.count("store_saves")
        except Exception:
            self.engine.stats.count("store_errors")

    def core_numbers(self):
        """Core decomposition of the active graph (cached, and kept
        current by an attached maintainer)."""
        return self.indexes.core(self._require_current())

    def maintainer(self, name=None):
        """A :class:`~repro.core.maintenance.CoreMaintainer` for a
        graph, wired into index versioning: every edge update through
        it bumps the index version and selectively evicts cached
        results (the mutation gateway for online graphs)."""
        if name is None:
            name = self._require_current()
        if name not in self._graphs:
            raise CExplorerError("no graph named {!r} uploaded"
                                 .format(name))
        return self.indexes.attach_maintainer(name)

    def truss_maintainer(self, name=None):
        """Enable incremental truss maintenance for a graph.

        Attaches a
        :class:`~repro.core.truss_maintenance.TrussMaintainer` behind
        the graph's :meth:`maintainer` gateway: every edge update then
        additionally patches per-edge triangle support and truss
        numbers and reports the truss-affected region, so cached
        k-truss/ATC results survive unrelated updates instead of being
        evicted wholesale.  Returns the mutation gateway (the wired
        :class:`~repro.core.maintenance.CoreMaintainer`) -- route all
        edge updates through it, exactly as with :meth:`maintainer`.
        """
        if name is None:
            name = self._require_current()
        if name not in self._graphs:
            raise CExplorerError("no graph named {!r} uploaded"
                                 .format(name))
        self.indexes.attach_truss_maintainer(name)
        return self.indexes.attach_maintainer(name)

    def keyword_candidates(self, vertex, k, keyword):
        """Vertices carrying ``keyword`` in the query vertex's k-core
        component -- the CL-tree inverted-index lookup, memoized in the
        engine so overlapping queries share it."""
        name = self._require_current()
        q = self.resolve_vertex(vertex)
        version = self.indexes.version(name)

        def compute():
            tree = self.index()
            root = tree.component_root(q, k)
            if root is None:
                return ()
            return tuple(tree.vertices_with_keyword(root, keyword))

        return self.engine.memo.get_or_compute(
            name, version, "cltree-keyword", (q, k, keyword), compute)

    def name_index(self):
        """Prefix index over the active graph's names (lazy)."""
        entry = self._graphs[self._require_current()]
        if entry.names is None:
            entry.names = NameIndex.from_graph(entry.graph)
        return entry.names

    def suggest_names(self, prefix, limit=10):
        """Autocomplete for the query box."""
        return self.name_index().suggest(prefix, limit=limit)

    def summary(self):
        """The dataset panel (whole-graph statistics), cached."""
        entry = self._graphs[self._require_current()]
        if entry.summary is None:
            entry.summary = graph_summary(entry.graph)
        return entry.summary

    # ------------------------------------------------------------------
    # the left panel: query construction helpers
    # ------------------------------------------------------------------
    def resolve_vertex(self, vertex):
        """Accept a vertex id, exact label, or case-insensitive label.

        The demo lets the user type "jim gray"; this does that lookup.
        """
        graph = self.graph
        if isinstance(vertex, int):
            if vertex not in graph:
                raise QueryError("vertex id {} out of range".format(vertex))
            return vertex
        if graph.has_label(vertex):
            return graph.id_of(vertex)
        lowered = str(vertex).strip().lower()
        for label, vid in graph.labels().items():
            if label.lower() == lowered:
                return vid
        raise QueryError("no author named {!r}".format(vertex))

    def query_options(self, vertex):
        """What the left panel shows once a name is typed (Figure 1):
        the degree constraints available and the author's keywords."""
        graph = self.graph
        v = self.resolve_vertex(vertex)
        core = self.core_numbers()
        return {
            "vertex": v,
            "name": graph.display_name(v),
            "degree": graph.degree(v),
            "max_k": core[v],
            "degree_choices": list(range(1, core[v] + 1)),
            "keywords": sorted(graph.keywords(v)),
        }

    # ------------------------------------------------------------------
    # search / detect (the paper API)
    # ------------------------------------------------------------------
    def _resolve_query(self, vertex):
        """Resolve one vertex or a multi-vertex query list."""
        if isinstance(vertex, (list, tuple, set)):
            q = [self.resolve_vertex(v) for v in vertex]
            return q[0] if len(q) == 1 else q
        return self.resolve_vertex(vertex)

    def peek_cached(self, algorithm, vertex, k=4, keywords=None,
                    **params):
        """The cached result for this query, or ``None`` -- without
        running anything.  The engine's fast path: cache hits bypass
        the worker queue (and its admission control) entirely.
        """
        if params or self._current is None:
            return None
        try:
            q = self._resolve_query(vertex)
        except CExplorerError:
            return None
        name = self._current
        # Deliberately untraced: this probe runs on every cache hit,
        # where even a no-op span context costs real money; on misses
        # the engine attaches the whole probe as one post-hoc
        # ``cache_lookup`` span and the executing worker records the
        # authoritative ``plan`` span.
        plan = plan_search(algorithm, self.graph,
                           index_ready=self.indexes.built(name),
                           keywords=keywords,
                           shards=self.indexes.shards(name))
        key = self.cache.key(name, plan.algorithm, q, k, keywords)
        return self.cache.get(key, record_miss=False)

    def search(self, algorithm, vertex, k=4, keywords=None,
               use_cache=True, **params):
        """Run a CS algorithm: ``search(CSAlgorithm algo, Query query)``.

        ``vertex`` may be an id, a label, or a list of either (the
        multi-vertex "+" button).  ``algorithm`` may be ``"auto"``:
        the planner picks the strategy from graph size, keyword
        constraints, and index readiness.  ACQ variants receive the
        versioned CL-tree when the plan calls for it.  Results are
        cached per (graph, algorithm, q, k, S) with their vertex
        footprint recorded, so maintenance updates evict exactly the
        entries they could have changed -- unless extra ``params`` are
        given or ``use_cache=False``.

        Every search runs under a query trace: when the engine's
        queue path submitted this call its trace is already active on
        the thread; direct library calls open (and finish) a root
        trace of their own through the engine's recorder.
        """
        name = self._require_current()
        with self.engine.tracer.trace("search", graph=name,
                                      algorithm=algorithm, k=k) as trace:
            return self._search_planned(trace, name, algorithm, vertex,
                                        k, keywords, use_cache, params)

    def _search_planned(self, trace, name, algorithm, vertex, k,
                        keywords, use_cache, params):
        """The traced body of :meth:`search` (``trace`` may be
        ``None`` when the recorder is disabled)."""
        graph = self.graph
        q = self._resolve_query(vertex)
        with tracing.span("plan", graph=name):
            plan = plan_search(algorithm, graph,
                               index_ready=self.indexes.built(name),
                               keywords=keywords,
                               shards=self.indexes.shards(name),
                               full_payload=self.engine
                               .full_query_capable(name))
        algo = get_cs_algorithm(plan.algorithm)
        if trace is not None:
            trace.tag(graph=name, algorithm=plan.algorithm, k=k,
                      fanout=plan.fanout,
                      worker_full_query=plan.worker_full_query)
        cache_key = None
        if use_cache and not params:
            cache_key = self.cache.key(name, algo.name, q, k, keywords)
            cached = self.cache.get(cache_key)
            if cached is not None:
                return cached
        result = None
        if plan.fanout and not params and self._fanout_applicable(plan, q):
            # Partition-parallel: per-shard structural subqueries on
            # the worker pool, merged at the engine layer, finished
            # through the whole-query worker pipeline.  Results are
            # identical to the unsharded path, so the merged result is
            # cached under the same key below.
            result = self.engine.search_sharded(name, plan.algorithm,
                                                q, k, keywords=keywords)
        elif plan.worker_full_query and not params:
            # Whole-query worker execution: the entire search --
            # structural phase included -- runs against the cached
            # frozen payload (in a worker process under the process
            # backend).  Any pipeline failure falls through to the
            # inline path below; results are identical either way.
            try:
                result = self.engine.search_full_query(
                    name, plan.algorithm, q, k, keywords=keywords)
            except (QueryError, EngineError):
                # Validation and admission-control errors are
                # identical inline; surface them directly.
                raise
            except (CExplorerError, IndexError, KeyError,
                    RuntimeError):
                # Unregistered-name race, or a snapshot torn by a
                # concurrent out-of-gateway mutation: run inline,
                # visibly.
                self.engine.stats.count("full_query_fallbacks")
        if result is None:
            if plan.use_index and algo.name.startswith("acq") \
                    and "index" not in params:
                params["index"] = self.index()
            elif algo.name == "global" and "core" not in params:
                # Global's answer is the connected k-core component;
                # hand it the versioned decomposition (cached per
                # graph version, patched by maintenance) so it skips
                # the O(n + m) whole-graph peel per query.
                params["core"] = self.indexes.core(name)
            elif algo.name == "k-truss" and "truss" not in params:
                # Same reuse for the triangle family: the versioned
                # truss index (patched in place by an attached truss
                # maintainer) replaces the per-query O(m^1.5)
                # decomposition.
                params["truss"] = self.indexes.truss(name)
            result = algo(graph, q, k, keywords=keywords, **params)
        if cache_key is not None:
            footprint = {v for c in result for v in c}
            self.cache.put(cache_key, result, vertices=footprint)
        return result

    @staticmethod
    def _fanout_applicable(plan, q):
        """``global`` and ``k-truss`` take a single query vertex; the
        ACQ family and ``atc`` also accept multi-vertex queries (the
        "+" button)."""
        if plan.algorithm in ("global", "k-truss"):
            return isinstance(q, int)
        return True

    def detect(self, algorithm, per_component=False, **params):
        """Run a CD algorithm on the whole active graph.

        Detections route through the engine's frozen-payload pipeline
        whenever that pays (always under the process backend -- the
        whole detection escapes the GIL; under the thread backend once
        a payload is cached): the worker runs the registered algorithm
        against the CSR snapshot and ships plain results back, byte-
        identical to inline execution.  ``per_component=True``
        additionally fans the detection out as one worker job per
        connected component -- a deterministic plan of its own whose
        output concatenates the per-component results (identical to
        the whole-graph output exactly when the graph is connected).
        Any pipeline failure falls back to inline detection.
        """
        algo = get_cd_algorithm(algorithm)
        name = self._require_current()
        with self.engine.tracer.trace(
                "detect", graph=name, algorithm=algo.name,
                per_component=per_component or None):
            if per_component or self.engine.full_query_capable(name):
                try:
                    return self.engine.detect(
                        name, algo.name, params=params,
                        per_component=per_component)
                except (QueryError, EngineError):
                    raise
                except (CExplorerError, TypeError, IndexError,
                        KeyError, RuntimeError):
                    # Per-component output is a plan of its own (it
                    # only coincides with whole-graph detection on
                    # connected graphs), so an explicit request for it
                    # must never silently degrade to the inline
                    # whole-graph run.
                    if per_component:
                        raise
                    # Unregistered-name race, unpicklable params, or a
                    # snapshot torn by an out-of-gateway mutation: run
                    # inline, visibly.
                    self.engine.stats.count("full_query_fallbacks")
            return algo(self.graph, **params)

    # ------------------------------------------------------------------
    # analysis
    # ------------------------------------------------------------------
    def analyze(self, community, query_vertex=None):
        """Quality metrics for one community (the `analyze` API call)."""
        metrics = {
            "vertices": community.vertex_count,
            "edges": community.edge_count,
            "average_degree": round(community.average_degree, 2),
            "min_internal_degree": community.minimum_internal_degree(),
            "density": round(community_density(community), 4),
            "conductance": round(community_conductance(community), 4),
            "cpj": round(cpj(community), 4),
        }
        qv = query_vertex
        if qv is None and community.query_vertices:
            qv = community.query_vertices[0]
        if qv is not None:
            metrics["cmf"] = round(cmf(community, query_vertex=qv), 4)
        return metrics

    def compare(self, vertex, k=4, methods=("global", "local", "codicil",
                                            "acq"), keywords=None,
                method_params=None):
        """The Comparison Analysis screen (Figure 6) as a report object."""
        q = self.resolve_vertex(vertex)
        params = dict(method_params or {})
        if any(m.startswith("acq") for m in methods):
            for m in methods:
                if m.startswith("acq"):
                    params.setdefault(m, {}).setdefault("index", self.index())
        return compare_methods(self.graph, q, k, methods=methods,
                               keywords=keywords, method_params=params)

    # ------------------------------------------------------------------
    # display / profiles
    # ------------------------------------------------------------------
    def display(self, community, fmt="svg", layout="ego", **kwargs):
        """Compute a layout and render (the `display` API call).

        ``fmt``: ``"svg"``, ``"ascii"`` or ``"positions"`` (raw layout
        dict, which is what the original API returns to the browser).
        """
        layouts = {"ego": ego_layout, "circular": circular_layout,
                   "spring": spring_layout}
        if layout not in layouts:
            raise CExplorerError("unknown layout {!r}; choose from {}"
                                 .format(layout, sorted(layouts)))
        positions = layouts[layout](community)
        if fmt == "positions":
            return positions
        if fmt == "svg":
            return render_svg(community, layout=positions, **kwargs)
        if fmt == "ascii":
            return render_ascii(community, layout=positions, **kwargs)
        raise CExplorerError("unknown display format {!r}".format(fmt))

    def profile(self, vertex):
        """The Figure 2 author-profile card for a vertex or name."""
        v = self.resolve_vertex(vertex)
        return self.profiles.get(self.graph.display_name(v))

    # ------------------------------------------------------------------
    # introspection
    # ------------------------------------------------------------------
    @staticmethod
    def available_algorithms():
        """Registered algorithm names: the UI's drop-downs."""
        return {"cs": list_cs_algorithms(), "cd": list_cd_algorithms()}

    def _require_current(self):
        if self._current is None:
            raise CExplorerError("no graph uploaded yet")
        return self._current
