"""Author profiles (Figure 2).

The paper extracts profiles of several hundred renowned database
researchers from Wikipedia.  We cannot ship that crawl; instead the
store carries hand-written profiles for the seed researchers used in
the demo walkthrough and synthesises deterministic placeholder
profiles for everyone else, so the "click a portrait, see the profile,
keep exploring" loop works for every vertex.
"""

from repro.util.rng import make_rng

_AREAS = ["Computer science", "Data management", "Information systems"]
_INTERESTS = [
    "query processing", "transaction management", "graph analytics",
    "data integration", "stream processing", "database tuning",
    "distributed systems", "data mining", "information retrieval",
    "spatial databases",
]
_INSTITUTES = [
    "University of Hong Kong", "ETH Zurich", "Tsinghua University",
    "University of Wisconsin-Madison", "National University of Singapore",
    "Technical University of Munich", "KAIST", "EPFL",
    "University of Waterloo", "Aalborg University",
]

#: Hand-written profiles for the researchers in the demo walkthrough.
_BUILTIN = {
    "Jim Gray": {
        "areas": "Computer science",
        "institute": "Microsoft Research; IBM; Tandem Computers",
        "interests": "Transaction processing; database systems; "
                     "scientific data management",
    },
    "Michael Stonebraker": {
        "areas": "Computer science",
        "institute": "University of California, Berkeley; University of "
                     "Michigan, Massachusetts Institute of Technology",
        "interests": "Relational database systems; column-oriented DBMS",
    },
    "Michael L. Brodie": {
        "areas": "Computer science",
        "institute": "Verizon; Massachusetts Institute of Technology",
        "interests": "Databases; semantic technologies; data curation",
    },
    "Bruce G. Lindsay": {
        "areas": "Computer science",
        "institute": "IBM Almaden Research Center",
        "interests": "Distributed databases; replication; System R",
    },
    "Gerhard Weikum": {
        "areas": "Computer science",
        "institute": "Max Planck Institute for Informatics",
        "interests": "Transaction processing; knowledge bases; "
                     "information extraction",
    },
    "Hector Garcia-Molina": {
        "areas": "Computer science",
        "institute": "Stanford University; Princeton University",
        "interests": "Database systems; digital libraries; "
                     "information integration",
    },
    "Stanley B. Zdonik": {
        "areas": "Computer science",
        "institute": "Brown University",
        "interests": "Object-oriented databases; stream processing; "
                     "column stores",
    },
    "David J. DeWitt": {
        "areas": "Computer science",
        "institute": "University of Wisconsin-Madison; Microsoft",
        "interests": "Parallel database systems; benchmarking; "
                     "query processing",
    },
    "Rakesh Agrawal": {
        "areas": "Computer science",
        "institute": "IBM Almaden Research Center; Microsoft Research",
        "interests": "Data mining; association rules; privacy",
    },
    "Jeffrey D. Ullman": {
        "areas": "Computer science",
        "institute": "Stanford University",
        "interests": "Database theory; compilers; data mining",
    },
    "Jennifer Widom": {
        "areas": "Computer science",
        "institute": "Stanford University",
        "interests": "Data streams; uncertain data; active databases",
    },
    "Serge Abiteboul": {
        "areas": "Computer science",
        "institute": "INRIA; ENS Paris",
        "interests": "Database theory; Web data; XML",
    },
    "Raghu Ramakrishnan": {
        "areas": "Computer science",
        "institute": "University of Wisconsin-Madison; Yahoo!; "
                     "Microsoft",
        "interests": "Deductive databases; data mining; cloud data "
                     "platforms",
    },
    "Joseph M. Hellerstein": {
        "areas": "Computer science",
        "institute": "University of California, Berkeley",
        "interests": "Adaptive query processing; declarative "
                     "networking; data wrangling",
    },
    "Samuel Madden": {
        "areas": "Computer science",
        "institute": "Massachusetts Institute of Technology",
        "interests": "Sensor data; column stores; main-memory systems",
    },
    "Surajit Chaudhuri": {
        "areas": "Computer science",
        "institute": "Microsoft Research",
        "interests": "Self-tuning databases; query optimization; "
                     "data cleaning",
    },
    "Anastasia Ailamaki": {
        "areas": "Computer science",
        "institute": "EPFL; Carnegie Mellon University",
        "interests": "Hardware-conscious databases; scientific data "
                     "management",
    },
    "Beng Chin Ooi": {
        "areas": "Computer science",
        "institute": "National University of Singapore",
        "interests": "Distributed data management; indexing; "
                     "machine learning systems",
    },
    "Divesh Srivastava": {
        "areas": "Computer science",
        "institute": "AT&T Labs-Research",
        "interests": "Data quality; data integration; streams",
    },
    "Alon Y. Halevy": {
        "areas": "Computer science",
        "institute": "University of Washington; Google; Meta AI",
        "interests": "Data integration; Web data; knowledge bases",
    },
}


class AuthorProfile:
    """One profile card, as rendered in the Figure 2 pop-up."""

    __slots__ = ("name", "areas", "institute", "interests", "synthetic")

    def __init__(self, name, areas, institute, interests, synthetic=False):
        self.name = name
        self.areas = areas
        self.institute = institute
        self.interests = interests
        self.synthetic = synthetic

    def to_dict(self):
        return {
            "name": self.name,
            "areas": self.areas,
            "institute": self.institute,
            "research_interests": self.interests,
            "synthetic": self.synthetic,
        }

    def render_text(self):
        """The profile card as text, shaped like Figure 2."""
        return ("Author Profile\n"
                "  Name: {}\n"
                "  Areas: {}\n"
                "  Institute: {}\n"
                "  Research interests: {}".format(
                    self.name, self.areas, self.institute, self.interests))

    def __repr__(self):
        return "AuthorProfile({!r})".format(self.name)


class ProfileStore:
    """Profile lookup with deterministic synthesis for unknown names."""

    def __init__(self, extra=None):
        self._profiles = {}
        for name, fields in _BUILTIN.items():
            self._profiles[name] = AuthorProfile(name, **fields)
        if extra:
            for name, fields in extra.items():
                self._profiles[name] = AuthorProfile(name, **fields)

    def __contains__(self, name):
        return name in self._profiles

    def __len__(self):
        return len(self._profiles)

    def add(self, profile):
        """Register a (possibly replacement) profile."""
        self._profiles[profile.name] = profile

    def get(self, name):
        """Profile for ``name``; unknown names get a synthetic card.

        Synthesis is keyed on the name so it is stable across calls
        and sessions.
        """
        profile = self._profiles.get(name)
        if profile is not None:
            return profile
        rng = make_rng("profile:" + name)
        profile = AuthorProfile(
            name=name,
            areas=rng.choice(_AREAS),
            institute=rng.choice(_INSTITUTES),
            interests="; ".join(rng.sample(_INTERESTS, 2)),
            synthetic=True,
        )
        return profile
