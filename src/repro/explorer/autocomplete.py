"""Author-name autocompletion for the query box.

The demo UI's name field ("jim gray" with a "+" to add more authors)
needs fast prefix lookup over a million author names.  A compressed-
enough character trie gives O(|prefix| + results) suggestions; lookups
are case-insensitive, matching how the demo accepts "jim gray" for
"Jim Gray".
"""


class _TrieNode:
    __slots__ = ("children", "name")

    def __init__(self):
        self.children = {}
        self.name = None  # set on terminal nodes to the original name


class NameIndex:
    """Prefix index over vertex display names.

    >>> index = NameIndex(["Jim Gray", "Jennifer Widom"])
    >>> index.suggest("ji")
    ['Jim Gray']
    """

    def __init__(self, names=()):
        self._root = _TrieNode()
        self._count = 0
        for name in names:
            self.add(name)

    @classmethod
    def from_graph(cls, graph):
        """Index every display name of ``graph``."""
        return cls(graph.display_name(v) for v in graph.vertices())

    def __len__(self):
        return self._count

    def add(self, name):
        """Insert ``name``; duplicates are ignored."""
        node = self._root
        for ch in name.lower():
            node = node.children.setdefault(ch, _TrieNode())
        if node.name is None:
            node.name = name
            self._count += 1

    def __contains__(self, name):
        node = self._find(name.lower())
        return node is not None and node.name is not None

    def suggest(self, prefix, limit=10):
        """Up to ``limit`` names starting with ``prefix`` (sorted).

        An empty prefix returns the lexicographically first names --
        what the UI shows before the user types.
        """
        node = self._find(prefix.lower())
        if node is None:
            return []
        out = []
        # Iterative DFS in sorted-child order yields sorted names.
        stack = [node]
        while stack and len(out) < limit:
            current = stack.pop()
            if current.name is not None:
                out.append(current.name)
            for ch in sorted(current.children, reverse=True):
                stack.append(current.children[ch])
        return out[:limit]

    def _find(self, prefix):
        node = self._root
        for ch in prefix:
            node = node.children.get(ch)
            if node is None:
                return None
        return node
