"""Query sessions (and the original standalone result cache).

* :class:`ExplorationSession` -- the per-browser-session trail: which
  queries ran, in order, with what result summary.  It powers a
  "history" panel and the back-navigation the demo's exploration loop
  implies (Jim Gray -> Stonebraker -> ...).

* :class:`QueryCache` -- the original LRU cache over
  (graph, algorithm, q, k, S) keys.  The server path now uses the
  engine's :class:`~repro.engine.cache.ResultCache` (which adds
  eviction counters and footprint-based selective invalidation);
  QueryCache remains as the minimal standalone substrate -- the
  microbenchmark baseline in ``bench_substrates.py`` and a
  dependency-free cache for embedders who want one.
"""

import threading
import time
from collections import OrderedDict


class QueryCache:
    """Thread-safe LRU cache for community-search results."""

    def __init__(self, capacity=256):
        if capacity < 1:
            raise ValueError("capacity must be positive")
        self.capacity = capacity
        self._data = OrderedDict()
        self._lock = threading.Lock()
        self.hits = 0
        self.misses = 0

    @staticmethod
    def key(graph_name, algorithm, q, k, keywords=None):
        """Build a hashable cache key from query parameters."""
        if isinstance(q, (list, tuple, set)):
            q = tuple(sorted(q))
        kw = frozenset(keywords) if keywords is not None else None
        return (graph_name, algorithm, q, k, kw)

    def get(self, key):
        """Return the cached value or None; refreshes recency."""
        with self._lock:
            if key not in self._data:
                self.misses += 1
                return None
            self._data.move_to_end(key)
            self.hits += 1
            return self._data[key]

    def put(self, key, value):
        with self._lock:
            self._data[key] = value
            self._data.move_to_end(key)
            while len(self._data) > self.capacity:
                self._data.popitem(last=False)

    def invalidate(self, graph_name=None):
        """Drop everything (or only one graph's entries, e.g. after an
        upload replaced it)."""
        with self._lock:
            if graph_name is None:
                self._data.clear()
                return
            stale = [k for k in self._data if k[0] == graph_name]
            for k in stale:
                del self._data[k]

    def __len__(self):
        return len(self._data)

    def stats(self):
        total = self.hits + self.misses
        return {
            "entries": len(self._data),
            "capacity": self.capacity,
            "hits": self.hits,
            "misses": self.misses,
            "hit_rate": round(self.hits / total, 4) if total else 0.0,
        }


class ExplorationSession:
    """One user's exploration trail (the history panel)."""

    def __init__(self, session_id, max_entries=200):
        self.session_id = session_id
        self.max_entries = max_entries
        self._entries = []

    def record(self, algorithm, query_vertex, k, community_count,
               keywords=None):
        """Append one query to the trail."""
        self._entries.append({
            "timestamp": time.time(),
            "algorithm": algorithm,
            "vertex": query_vertex,
            "k": k,
            "keywords": sorted(keywords) if keywords else None,
            "communities": community_count,
        })
        if len(self._entries) > self.max_entries:
            self._entries = self._entries[-self.max_entries:]

    def history(self, limit=None):
        """Most-recent-first trail entries."""
        entries = list(reversed(self._entries))
        return entries[:limit] if limit is not None else entries

    def last(self):
        return self._entries[-1] if self._entries else None

    def __len__(self):
        return len(self._entries)


class SessionStore:
    """Thread-safe registry of exploration sessions by id."""

    def __init__(self):
        self._sessions = {}
        self._lock = threading.Lock()
        self._counter = 0

    def create(self):
        """Mint a fresh session; returns it."""
        with self._lock:
            self._counter += 1
            session_id = "s{:06d}".format(self._counter)
            session = ExplorationSession(session_id)
            self._sessions[session_id] = session
            return session

    def get(self, session_id, create_missing=True):
        """Fetch a session by id; unknown ids create a new session
        under that id when ``create_missing`` (browser reconnects)."""
        with self._lock:
            session = self._sessions.get(session_id)
            if session is None and create_missing:
                session = ExplorationSession(session_id)
                self._sessions[session_id] = session
            return session

    def __len__(self):
        return len(self._sessions)
