"""The user-facing system: the ``CExplorer`` facade and profiles.

:class:`~repro.explorer.cexplorer.CExplorer` is the Python rendering
of the paper's Java interface (Figure 4): ``upload``, ``search``,
``detect``, ``analyze``, ``display``, plus the profile lookups behind
the Figure 2 author pop-up.
"""

from repro.explorer.cexplorer import CExplorer
from repro.explorer.profiles import AuthorProfile, ProfileStore

__all__ = ["AuthorProfile", "CExplorer", "ProfileStore"]
