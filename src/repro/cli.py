"""Command-line interface: the system without the browser.

Subcommands mirror the paper's API (Figure 4) plus operational verbs::

    python -m repro generate --authors 2000 --out dblp.json
    python -m repro search   --graph dblp.json --vertex "jim gray" -k 4
    python -m repro compare  --graph dblp.json --vertex "jim gray" -k 4
    python -m repro detect   --graph dblp.json --algorithm codicil
    python -m repro index    --graph dblp.json --out dblp.cltree.json
    python -m repro profile  --name "Michael Stonebraker"
    python -m repro partition --graph dblp.json --shards 4
    python -m repro cache    --store ./store
    python -m repro cache    --store ./store --clear
    python -m repro serve    --graph dblp.json --port 8080 --shards 4
    python -m repro serve    --graph dblp.json --server async
    python -m repro trace    --graph dblp.json --vertex "jim gray"
    python -m repro trace    --url http://127.0.0.1:8080 --last 5

Graph-loading subcommands accept ``--shards N`` (with
``--partitioner hash|greedy``) to register the graph partitioned, so
shardable searches fan out over the engine's worker pool, and
``--backend thread|process`` to pick the execution backend
(``process`` ships shard subqueries and CL-tree builds to a
multiprocessing pool over frozen CSR snapshots -- real parallelism
for CPU-bound structural work on multi-core hosts).

Every subcommand prints human-readable text by default; ``--json``
switches to machine-readable output.
"""

import argparse
import json
import sys

from repro.analysis.statistics import format_table
from repro.core.persistence import load_cltree, save_cltree
from repro.datasets import DblpConfig, generate_dblp_graph
from repro.explorer.cexplorer import CExplorer
from repro.explorer.profiles import ProfileStore
from repro.graph.io import write_graph_json
from repro.server.app import make_server
from repro.util.errors import CExplorerError


def _load_explorer(args):
    explorer = CExplorer(workers=getattr(args, "workers", 2),
                         backend=getattr(args, "backend", "thread"),
                         faults=_fault_plan(args),
                         store_dir=getattr(args, "store", None))
    explorer.upload(args.graph, name="cli",
                    shards=getattr(args, "shards", 1),
                    partitioner=getattr(args, "partitioner", "hash"))
    if getattr(args, "index", None):
        tree = load_cltree(args.index, explorer.graph)
        explorer.indexes.install("cli", tree, core=tree.core)
    return explorer


def _fault_plan(args):
    """The seeded fault-injection plan named by ``--fault-plan`` (a
    spec string or a JSON file path), or ``None`` (which lets the
    engine honour ``REPRO_FAULT_PLAN`` from the environment)."""
    spec = getattr(args, "fault_plan", None)
    if not spec:
        return None
    import os

    from repro.engine.faults import FaultPlan
    if os.path.isfile(spec):
        with open(spec, encoding="utf-8") as handle:
            spec = handle.read()
    return FaultPlan.from_spec(spec)


def _cmd_generate(args):
    config = DblpConfig(n_authors=args.authors,
                        n_communities=args.communities, seed=args.seed)
    graph = generate_dblp_graph(config)
    write_graph_json(graph, args.out)
    print("wrote {} ({} vertices, {} edges)".format(
        args.out, graph.vertex_count, graph.edge_count))
    return 0


def _cmd_search(args):
    explorer = _load_explorer(args)
    communities = explorer.search(
        args.algorithm, args.vertex, k=args.k,
        keywords=set(args.keywords) if args.keywords else None)
    if args.json:
        print(json.dumps([c.to_dict() for c in communities], indent=1))
        return 0
    if not communities:
        print("no community found for {!r} with k={}".format(
            args.vertex, args.k))
        return 1
    for i, community in enumerate(communities, start=1):
        print("Community {} ({} members, {} edges, theme: {})".format(
            i, community.vertex_count, community.edge_count,
            ", ".join(community.theme(limit=6)) or "-"))
        for name in community.member_names():
            print("  -", name)
        if args.draw:
            print(explorer.display(community, fmt="ascii"))
    return 0


def _cmd_compare(args):
    explorer = _load_explorer(args)
    report = explorer.compare(args.vertex, k=args.k,
                              methods=tuple(args.methods))
    if args.json:
        print(json.dumps(report.to_dict(), indent=1))
    else:
        print(report.render_text())
    return 0


def _cmd_detect(args):
    explorer = _load_explorer(args)
    communities = explorer.detect(args.algorithm)
    if args.json:
        print(json.dumps([c.to_dict() for c in communities[:args.limit]],
                         indent=1))
        return 0
    print("{} communities".format(len(communities)))
    rows = [{"method": "#{} ({})".format(i + 1, args.algorithm),
             "communities": 1, "vertices": len(c),
             "edges": c.edge_count,
             "degree": round(c.average_degree, 2)}
            for i, c in enumerate(communities[:args.limit])]
    print(format_table(rows))
    return 0


def _cmd_index(args):
    explorer = _load_explorer(args)
    tree = explorer.index()
    save_cltree(tree, args.out)
    sizes = tree.index_size()
    print("wrote {} ({} nodes, {} postings, built in {:.3f}s)".format(
        args.out, sizes["nodes"], sizes["postings"],
        tree.build_seconds))
    return 0


def _cmd_partition(args):
    """Evaluate shard partitionings of a graph: balance vs edge cut."""
    from repro.engine.sharding import GraphPartitioner
    from repro.graph.io import load_graph

    graph = load_graph(args.graph)
    methods = (["hash", "greedy"] if args.partitioner == "both"
               else [args.partitioner])
    docs = []
    for method in methods:
        part = GraphPartitioner(args.shards, method).partition(graph)
        docs.append(part.stats())
    if args.json:
        print(json.dumps(docs, indent=1))
        return 0
    rows = [{"method": doc["method"], "shards": doc["shards"],
             "cut_edges": doc["cut_edges"], "balance": doc["balance"],
             "sizes": "/".join(str(s) for s in doc["sizes"])}
            for doc in docs]
    print(format_table(rows, columns=("method", "shards", "cut_edges",
                                      "balance", "sizes")))
    return 0


def _cmd_profile(args):
    profile = ProfileStore().get(args.name)
    if args.json:
        print(json.dumps(profile.to_dict(), indent=1))
    else:
        print(profile.render_text())
    return 0


def _cmd_trace(args):
    """Print a span waterfall for the last N query traces.

    Two modes: ``--url`` fetches traces from a running server's
    ``/v1/traces`` endpoints (unwrapping the ``{"ok", "data",
    "error"}`` envelope); ``--graph`` (with one or more ``--vertex``)
    runs the searches locally and prints the traces the engine
    recorded.
    """
    from repro.engine.tracing import format_waterfall

    def v1_data(url):
        import urllib.request

        with urllib.request.urlopen(url) as fh:
            doc = json.loads(fh.read().decode("utf-8"))
        if not doc.get("ok", False):
            error = doc.get("error") or {}
            raise CExplorerError("server error {}: {}".format(
                error.get("code", "?"), error.get("message", "?")))
        return doc["data"]

    docs = []
    if args.url:
        base = args.url.rstrip("/")
        listing = v1_data("{}/v1/traces?limit={}".format(base,
                                                        args.last))
        for summary in listing.get("traces", []):
            docs.append(v1_data("{}/v1/traces/{}".format(
                base, summary["query_id"])))
    else:
        if not args.graph or not args.vertex:
            raise CExplorerError(
                "trace needs either --url or --graph with --vertex")
        explorer = _load_explorer(args)
        for vertex in args.vertex:
            explorer.engine.search_sync(args.algorithm, vertex,
                                        k=args.k)
        docs = [trace.to_dict()
                for trace in explorer.engine.tracer.traces(
                    limit=args.last)]
    if args.json:
        print(json.dumps(docs, indent=1))
        return 0
    if not docs:
        print("no traces recorded")
        return 1
    for doc in docs:
        print(format_waterfall(doc))
        print()
    return 0


def _cmd_serve(args):
    explorer = _load_explorer(args)
    explorer.index()
    window = args.batch_window if args.batch_window >= 0 else None
    if args.server == "async":
        from repro.server.async_app import make_async_server

        server = make_async_server(
            explorer, host=args.host, port=args.port,
            batch_window=window if window is not None else 0.005)
        server.start_background()
        host, port = server.server_address
        print("C-Explorer serving on http://{}:{}/ (asyncio, "
              "batch window {:.1f}ms)".format(
                  host, port,
                  (server.state.batcher.window * 1000)
                  if server.state.batcher else 0.0))
        try:
            import time as _time
            while True:
                _time.sleep(3600)
        except KeyboardInterrupt:
            server.shutdown()
        return 0
    server = make_server(explorer, host=args.host, port=args.port,
                         batch_window=window)
    host, port = server.server_address
    print("C-Explorer serving on http://{}:{}/".format(host, port))
    try:
        server.serve_forever()
    except KeyboardInterrupt:
        server.shutdown()
    return 0


def _cmd_cache(args):
    """Inspect (or clear) the persistent warm store."""
    import os

    from repro.engine.payloads import ENV_STORE, GraphStore
    store_dir = args.store or os.environ.get(ENV_STORE)
    if not store_dir:
        print("error: no store directory (give --store or set "
              "REPRO_STORE_DIR)", file=sys.stderr)
        return 2
    store = GraphStore(store_dir)
    if args.clear:
        removed = store.clear()
        if args.json:
            print(json.dumps({"path": store.root, "cleared": removed}))
        else:
            print("cleared {} stored graph(s) from {}".format(
                removed, store.root))
        return 0
    doc = store.describe()
    if args.json:
        print(json.dumps(doc, indent=1))
        return 0
    print("store: {}".format(doc["path"]))
    if not doc["graphs"]:
        print("  (empty)")
        return 0
    rows = [{"graph": g["graph"], "payload": g["payload_bytes"],
             "cltree": g["cltree_bytes"], "results": g["result_entries"],
             "spilled": g["result_bytes"],
             "fingerprint": g["fingerprint"][:12]}
            for g in doc["graphs"]]
    print(format_table(rows, columns=("graph", "payload", "cltree",
                                      "results", "spilled",
                                      "fingerprint")))
    print("total: {} bytes".format(doc["total_bytes"]))
    return 0


def build_parser():
    parser = argparse.ArgumentParser(
        prog="repro",
        description="C-Explorer: browsing communities in large graphs")
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("generate", help="generate a synthetic DBLP graph")
    p.add_argument("--authors", type=int, default=2000)
    p.add_argument("--communities", type=int, default=24)
    p.add_argument("--seed", type=int, default=7)
    p.add_argument("--out", required=True)
    p.set_defaults(func=_cmd_generate)

    def common(p, with_vertex=True):
        p.add_argument("--graph", required=True,
                       help="edge-list or JSON graph file")
        p.add_argument("--index", help="prebuilt CL-tree JSON")
        p.add_argument("--json", action="store_true",
                       help="machine-readable output")
        p.add_argument("--shards", type=int, default=1,
                       help="partition the graph into N shards and fan "
                            "structural queries out (default 1)")
        p.add_argument("--partitioner", default="hash",
                       choices=["hash", "greedy"],
                       help="shard placement: deterministic hash or "
                            "greedy edge-cut balancer")
        p.add_argument("--workers", type=int, default=2,
                       help="engine worker threads (default 2)")
        p.add_argument("--backend", default="thread",
                       choices=["thread", "process"],
                       help="execution backend: 'process' runs shard "
                            "subqueries and CL-tree builds in a "
                            "multiprocessing pool over frozen CSR "
                            "snapshots (default thread)")
        p.add_argument("--fault-plan",
                       help="seeded fault-injection plan for chaos "
                            "testing: a spec string like "
                            "'seed=7;kill:shard@0.05' or a path to a "
                            "JSON plan file (default: the "
                            "REPRO_FAULT_PLAN environment variable)")
        p.add_argument("--store",
                       help="persistent warm-store directory: frozen "
                            "payloads, CL-trees, and spilled results "
                            "survive restarts (default: the "
                            "REPRO_STORE_DIR environment variable)")
        if with_vertex:
            p.add_argument("--vertex", required=True)
            p.add_argument("-k", type=int, default=4,
                           help="minimum degree (default 4)")

    p = sub.add_parser("search", help="community search for a vertex")
    common(p)
    p.add_argument("--algorithm", default="acq")
    p.add_argument("--keywords", nargs="*",
                   help="restrict S to these keywords")
    p.add_argument("--draw", action="store_true",
                   help="ASCII-render each community")
    p.set_defaults(func=_cmd_search)

    p = sub.add_parser("compare", help="Figure 6 comparison analysis")
    common(p)
    p.add_argument("--methods", nargs="+",
                   default=["global", "local", "codicil", "acq"])
    p.set_defaults(func=_cmd_compare)

    p = sub.add_parser("detect", help="whole-graph community detection")
    common(p, with_vertex=False)
    p.add_argument("--algorithm", default="label-propagation")
    p.add_argument("--limit", type=int, default=20)
    p.set_defaults(func=_cmd_detect)

    p = sub.add_parser("index", help="build and save the CL-tree")
    common(p, with_vertex=False)
    p.add_argument("--out", required=True)
    p.set_defaults(func=_cmd_index)

    p = sub.add_parser(
        "cache", help="inspect or clear the persistent warm store")
    p.add_argument("--store",
                   help="store directory (default: the REPRO_STORE_DIR "
                        "environment variable)")
    p.add_argument("--clear", action="store_true",
                   help="delete every stored graph")
    p.add_argument("--json", action="store_true")
    p.set_defaults(func=_cmd_cache)

    p = sub.add_parser("profile", help="show an author profile card")
    p.add_argument("--name", required=True)
    p.add_argument("--json", action="store_true")
    p.set_defaults(func=_cmd_profile)

    p = sub.add_parser("partition",
                       help="evaluate shard partitionings of a graph")
    p.add_argument("--graph", required=True,
                   help="edge-list or JSON graph file")
    p.add_argument("--shards", type=int, default=4)
    p.add_argument("--partitioner", default="both",
                   choices=["hash", "greedy", "both"])
    p.add_argument("--json", action="store_true")
    p.set_defaults(func=_cmd_partition)

    p = sub.add_parser("serve", help="run the web system")
    common(p, with_vertex=False)
    p.add_argument("--host", default="127.0.0.1")
    p.add_argument("--port", type=int, default=8080)
    p.add_argument("--server", default="sync",
                   choices=["sync", "async"],
                   help="'async' serves through the asyncio front-end "
                        "with cross-query batching on (default sync)")
    p.add_argument("--batch-window", type=float, default=-1.0,
                   help="admission window in seconds for cross-query "
                        "batching; negative (default) means off for "
                        "--server sync and 0.005 for --server async")
    p.set_defaults(func=_cmd_serve)

    p = sub.add_parser(
        "trace", help="print a waterfall of recent query traces")
    p.add_argument("--url",
                   help="base URL of a running server (reads its "
                        "/api/traces endpoints)")
    p.add_argument("--graph", help="edge-list or JSON graph file "
                                   "(local mode)")
    p.add_argument("--vertex", action="append",
                   help="query vertex; repeatable (local mode)")
    p.add_argument("--algorithm", default="auto")
    p.add_argument("-k", type=int, default=4,
                   help="minimum degree (default 4)")
    p.add_argument("--last", type=int, default=5,
                   help="how many recent traces to print (default 5)")
    p.add_argument("--shards", type=int, default=1)
    p.add_argument("--partitioner", default="hash",
                   choices=["hash", "greedy"])
    p.add_argument("--workers", type=int, default=2)
    p.add_argument("--backend", default="thread",
                   choices=["thread", "process"])
    p.add_argument("--json", action="store_true",
                   help="print the raw trace documents")
    p.set_defaults(func=_cmd_trace)

    return parser


def main(argv=None):
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return args.func(args)
    except CExplorerError as exc:
        print("error: {}".format(exc), file=sys.stderr)
        return 2
    except BrokenPipeError:
        # Output was piped into e.g. `head`; not an error.
        devnull = open("/dev/null", "w")
        sys.stdout = devnull
        return 0


if __name__ == "__main__":
    sys.exit(main())
