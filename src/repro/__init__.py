"""C-Explorer: browsing communities in large graphs -- reproduction.

A from-scratch Python implementation of the system described in
"C-Explorer: Browsing Communities in Large Graphs" (Fang, Cheng, Luo,
Hu, Huang; PVLDB 10(12), 2017) and of the ACQ engine it is built on
(Fang et al., PVLDB 9(12), 2016).

Quickstart::

    from repro import CExplorer
    from repro.datasets import generate_dblp_graph

    explorer = CExplorer()
    explorer.add_graph("dblp", generate_dblp_graph())
    for community in explorer.search("acq", "Jim Gray", k=4):
        print(community.theme(), community.member_names()[:5])

Layering (see DESIGN.md):

* :mod:`repro.graph` -- the attributed-graph substrate;
* :mod:`repro.core` -- k-core/k-truss decompositions, the CL-tree
  index, and the ACQ query algorithms (the paper's engine);
* :mod:`repro.algorithms` -- Global, Local, CODICIL, k-truss search,
  Newman-Girvan, label propagation and the plug-in registry;
* :mod:`repro.analysis` -- CPJ/CMF metrics and comparison analysis;
* :mod:`repro.viz` -- layouts and SVG/ASCII rendering;
* :mod:`repro.datasets` -- the Figure 5 example, karate club, and the
  synthetic DBLP generator;
* :mod:`repro.engine` -- the query execution engine: bounded worker
  pool, result cache with selective invalidation, versioned index
  lifecycle, query planning, and latency metrics;
* :mod:`repro.explorer` / :mod:`repro.server` -- the CExplorer facade
  and the browser-server system around it.
"""

from repro.analysis import cmf, compare_methods, cpj
from repro.core import (
    AcqQuery,
    CLTree,
    Community,
    acq_search,
    build_cltree,
    connected_k_core,
    core_decomposition,
    k_core,
    k_truss,
    truss_decomposition,
)
from repro.engine import IndexManager, QueryEngine
from repro.explorer import CExplorer
from repro.graph import AttributedGraph, FrozenGraph, freeze, load_graph
from repro.server import make_server

__version__ = "1.0.0"

__all__ = [
    "AcqQuery",
    "AttributedGraph",
    "CExplorer",
    "CLTree",
    "Community",
    "FrozenGraph",
    "IndexManager",
    "QueryEngine",
    "acq_search",
    "build_cltree",
    "cmf",
    "compare_methods",
    "connected_k_core",
    "core_decomposition",
    "cpj",
    "freeze",
    "k_core",
    "k_truss",
    "load_graph",
    "make_server",
    "truss_decomposition",
    "__version__",
]
