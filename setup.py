"""Setup shim.

Kept alongside pyproject.toml so ``pip install -e .`` works on
environments without the ``wheel`` package (legacy editable installs
go through ``setup.py develop``, which needs this file).
"""

from setuptools import setup

setup()
