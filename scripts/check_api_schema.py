#!/usr/bin/env python
"""API contract checker (the CI docs job).

Boots both front-ends -- the threaded server and the asyncio one
(cross-query batching on) -- over a small generated graph and
validates the live surface against the ``/v1`` contract in
``docs/API.md``:

* every ``/v1`` route in the route table answers, and every response
  wears the uniform envelope (``ok`` / ``data`` / ``error`` with the
  documented types, ``trace`` only on traced queries);
* every error path emits a **registered** code from
  ``routes.ERROR_CODES`` with exactly the status registered for it,
  and the error object carries ``code`` + ``message`` (plus
  ``retry: true`` only where documented);
* every legacy ``/api/*`` shim route answers with the bare-document
  body (no envelope), a ``Deprecation: true`` header, and a ``Link``
  naming its ``/v1`` successor;
* ``docs/API.md`` itself stays in sync: it must mention every ``/v1``
  route template and every error code (and no unregistered codes).

Runs entirely in-process over loopback, so an API drift fails CI
instead of a client.

Usage: python scripts/check_api_schema.py
"""

import json
import os
import re
import sys
import urllib.error
import urllib.request

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
sys.path.insert(0, os.path.join(REPO_ROOT, "src"))


def get(base, path):
    """(status, headers, parsed JSON body) for a GET."""
    return _fetch(urllib.request.Request(base + path))


def post(base, path, doc=None, raw=None):
    """(status, headers, parsed JSON body) for a JSON POST."""
    body = raw if raw is not None else json.dumps(doc or {}).encode()
    return _fetch(urllib.request.Request(
        base + path, data=body,
        headers={"Content-Type": "application/json"}))


def _fetch(request):
    try:
        with urllib.request.urlopen(request) as resp:
            return resp.status, dict(resp.headers), \
                json.loads(resp.read().decode("utf-8"))
    except urllib.error.HTTPError as err:
        return err.code, dict(err.headers), \
            json.loads(err.read().decode("utf-8"))


def boot(kind):
    """A running (server, base_url) pair; kind is 'sync' or 'async'."""
    from repro.datasets import DblpConfig, generate_dblp_graph
    from repro.explorer.cexplorer import CExplorer

    explorer = CExplorer(workers=2)
    explorer.add_graph("smoke", generate_dblp_graph(
        DblpConfig(n_authors=200, n_communities=6, seed=11)), shards=2)
    if kind == "async":
        from repro.server.async_app import make_async_server
        server = make_async_server(explorer, port=0)
        server.start_background()
    else:
        import threading
        from repro.server.app import make_server
        server = make_server(explorer, port=0)
        threading.Thread(target=server.serve_forever,
                         daemon=True).start()
    host, port = server.server_address[:2]
    return server, "http://{}:{}".format(host, port)


def check_envelope(path, status, doc):
    """Yield problems with one /v1 response envelope."""
    if not isinstance(doc, dict):
        yield "{}: body is not a JSON object".format(path)
        return
    for key in ("ok", "data", "error"):
        if key not in doc:
            yield "{}: envelope missing key {!r}".format(path, key)
    extra = set(doc) - {"ok", "data", "error", "trace"}
    if extra:
        yield "{}: unexpected envelope keys {}".format(
            path, sorted(extra))
    if doc.get("ok") is True:
        if status != 200:
            yield "{}: ok=true with HTTP {}".format(path, status)
        if doc.get("error") is not None:
            yield "{}: ok=true but error is not null".format(path)
    elif doc.get("ok") is False:
        if status == 200:
            yield "{}: ok=false with HTTP 200".format(path)
        if doc.get("data") is not None:
            yield "{}: ok=false but data is not null".format(path)
        for problem in check_error_object(path, status, doc):
            yield problem
    else:
        yield "{}: 'ok' is {!r}, not a bool".format(path, doc.get("ok"))


def check_error_object(path, status, doc):
    from repro.server.routes import ERROR_CODES
    error = doc.get("error")
    if not isinstance(error, dict):
        yield "{}: error is {!r}, not an object".format(path, error)
        return
    code = error.get("code")
    if code not in ERROR_CODES:
        yield "{}: unregistered error code {!r}".format(path, code)
    elif ERROR_CODES[code][0] != status:
        yield "{}: code {!r} registered as HTTP {}, served as {}" \
            .format(path, code, ERROR_CODES[code][0], status)
    if not error.get("message"):
        yield "{}: error has no message".format(path)
    if set(error) - {"code", "message", "retry"}:
        yield "{}: unexpected error keys {}".format(
            path, sorted(set(error) - {"code", "message", "retry"}))


def expect_code(probes, name, got, want_code, want_status):
    status, _, doc = got
    for problem in check_envelope(name, status, doc):
        probes.append(problem)
    error = (doc.get("error") or {}) if isinstance(doc, dict) else {}
    if error.get("code") != want_code:
        probes.append("{}: expected code {!r}, got {!r}".format(
            name, want_code, error.get("code")))
    if status != want_status:
        probes.append("{}: expected HTTP {}, got {}".format(
            name, want_status, status))
    return error.get("code")


def check_server(base, kind):
    """Probe one live server; yield problem strings."""
    problems = []

    # -- success envelopes on every GET /v1 route ----------------------
    for path in ("/v1/algorithms", "/v1/graphs", "/v1/graphs/smoke",
                 "/v1/stats", "/v1/metrics", "/v1/traces",
                 "/v1/health", "/v1/ready"):
        status, _, doc = get(base, path)
        problems.extend(check_envelope(path, status, doc))
        if status != 200:
            problems.append("{}: HTTP {}".format(path, status))

    # -- a traced search: envelope + top-level trace id ----------------
    status, _, doc = post(base, "/v1/search",
                          {"vertex": "Jim Gray", "k": 3})
    problems.extend(check_envelope("/v1/search", status, doc))
    trace_id = doc.get("trace")
    if not trace_id:
        problems.append("/v1/search: traced query has no top-level "
                        "'trace' id")
    else:
        status, _, tdoc = get(base, "/v1/traces/{}".format(trace_id))
        problems.extend(check_envelope("/v1/traces/{id}", status, tdoc))
        if status != 200:
            problems.append("/v1/traces/{id}: HTTP %d" % status)

    # -- every documented client-visible error code --------------------
    exercised = set()
    cases = (
        ("GET /v1/nowhere", get(base, "/v1/nowhere"), "not_found", 404),
        ("GET /v1/graphs/missing", get(base, "/v1/graphs/missing"),
         "graph_not_found", 404),
        ("GET /v1/traces/missing", get(base, "/v1/traces/zz-missing"),
         "trace_not_found", 404),
        ("POST /v1/history", post(base, "/v1/history",
                                  {"session": "none"}),
         "session_not_found", 404),
        ("POST /v1/search (no vertex)", post(base, "/v1/search", {}),
         "missing_field", 400),
        ("POST /v1/search (bad k)",
         post(base, "/v1/search", {"vertex": "Jim Gray", "k": "many"}),
         "invalid_parameter", 400),
        ("POST /v1/search (bad algorithm)",
         post(base, "/v1/search",
              {"vertex": "Jim Gray", "algorithm": "nope"}),
         "unknown_algorithm", 400),
        ("POST /v1/search (bad vertex)",
         post(base, "/v1/search", {"vertex": "not a real author"}),
         "invalid_query", 400),
        ("POST /v1/search (bad json)",
         post(base, "/v1/search", raw=b"{nope"), "invalid_json", 400),
        ("POST /v1/upload (bad path)",
         post(base, "/v1/upload", {"path": "/definitely/missing.txt"}),
         "bad_request", 400),
    )
    for name, got, code, status in cases:
        exercised.add(expect_code(problems, name, got, code, status))

    # -- the legacy shim: bare bodies + deprecation headers ------------
    status, headers, doc = get(base, "/api/graphs")
    if status != 200 or "graphs" not in doc or "ok" in doc:
        problems.append("/api/graphs: shim must serve the bare legacy "
                        "document (got {})".format(sorted(doc)))
    if headers.get("Deprecation") != "true":
        problems.append("/api/graphs: missing Deprecation: true header")
    link = headers.get("Link", "")
    if "/v1/graphs" not in link or "successor-version" not in link:
        problems.append("/api/graphs: Link header {!r} does not name "
                        "the /v1 successor".format(link))
    status, headers, doc = post(base, "/api/history",
                                {"session": "none"})
    if status != 400 or list(doc) != ["error"]:
        problems.append("/api/history: legacy error must be HTTP 400 "
                        "{{'error': msg}} (got {} {})".format(
                            status, sorted(doc)))

    # -- template-bucketed request counters ----------------------------
    _, _, doc = get(base, "/v1/metrics")
    requests = (doc.get("data") or {}).get("requests", {})
    for key in requests:
        if re.search(r"/q\d|/[0-9a-f]{8}", key):
            problems.append("request counter key {!r} embeds a client "
                            "id (should be the route template)"
                            .format(key))
    if "/v1/traces/{query_id}" not in requests:
        problems.append("no '/v1/traces/{query_id}' counter bucket "
                        "after fetching a trace")

    return ["[{}] {}".format(kind, p) for p in problems], exercised


def check_docs(exercised):
    """docs/API.md must stay in sync with the live table."""
    from repro.server.routes import ERROR_CODES, v1_routes
    problems = []
    doc_path = os.path.join(REPO_ROOT, "docs", "API.md")
    text = open(doc_path, encoding="utf-8").read()
    for route in v1_routes():
        if route.template not in text:
            problems.append("docs/API.md does not document {} {}"
                            .format(route.method, route.template))
    documented = set(re.findall(r"`(\w+)` \| \d{3} \|", text))
    for code in ERROR_CODES:
        if code not in documented:
            problems.append("docs/API.md error table missing code "
                            "{!r}".format(code))
    for code in documented - set(ERROR_CODES):
        problems.append("docs/API.md documents unregistered code "
                        "{!r}".format(code))
    undriven = documented - exercised - {
        # Not reachable from a healthy smoke server: saturation and
        # deadline need a wedged engine (tests/test_api_v1.py covers
        # both), cancellation needs a racing shutdown, 'internal'
        # needs a server bug, 'not_ready' needs a full admission
        # queue or a shut-down engine (tests/test_resilience.py).
        "engine_saturated", "deadline_exceeded", "cancelled",
        "internal", "not_found", "not_ready",
    }
    # 'not_found' IS exercised; keep the allowlist honest.
    if "not_found" in exercised:
        undriven.discard("not_found")
    else:
        problems.append("probe set no longer exercises 'not_found'")
    for code in sorted(undriven):
        problems.append("documented code {!r} has no live probe"
                        .format(code))
    return problems


def main(argv):
    all_problems = []
    exercised = set()
    for kind in ("sync", "async"):
        server, base = boot(kind)
        try:
            problems, codes = check_server(base, kind)
        finally:
            server.shutdown()
        all_problems.extend(problems)
        exercised |= codes
    all_problems.extend(check_docs(exercised))
    for problem in all_problems:
        print("API: {}".format(problem))
    if all_problems:
        print("{} API contract problem(s)".format(len(all_problems)))
        return 1
    print("api ok: envelope + {} error codes validated on both "
          "front-ends; docs/API.md in sync".format(len(exercised)))
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
