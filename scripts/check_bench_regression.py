#!/usr/bin/env python3
"""Bench no-regression gate: compare this commit's BENCH_engine.json
trajectory entry against the previous baseline and fail on a >20%
slowdown of the kernel/engine health metrics.

The trajectory records absolute seconds, but CI runners (and quick
mode) make absolute numbers incomparable across entries; the gate
therefore checks the *dimensionless* metrics the benches already
compute, which hold their meaning across pool sizes and runners:

* ``kernels.core_decomposition.<graph>.speedup`` -- CSR kernel vs the
  seed set path (higher is better);
* ``engine.speedup_warm_vs_direct`` -- warm-cache throughput vs
  direct execution (higher is better);
* ``truss_maintenance.warm_hit_rate.selective`` -- selective
  invalidation's warm hit rate (higher is better);
* ``serving.speedup`` -- async+batched serving throughput vs the
  thread-per-request baseline on the concurrent overlapping workload
  (higher is better);
* ``resilience.success_rate`` / ``resilience.identical_rate`` --
  queries answered, and answered byte-identically to the fault-free
  run, under the seeded 5% worker-kill plan (higher is better;
  both should be 1.0);
* ``payload_plane.shard_ipc_collapse`` -- how many times the pickled
  transport's ``shard_ipc`` time exceeds the zero-copy shared-memory
  transport's on the same sharded cold workload (higher is better).

Usage: ``python scripts/check_bench_regression.py [--threshold 0.2]``
(run after the bench has written the current commit's entry).  Exits
non-zero when any metric present in *both* entries regressed by more
than the threshold; a missing baseline (first commit, rewritten
history, unknown commit) passes with a notice -- the gate can only
compare what exists.
"""

import argparse
import json
import os
import subprocess
import sys

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
TRAJECTORY_PATH = os.path.join(REPO_ROOT, "BENCH_engine.json")

# (path into one trajectory entry, human label); all are
# higher-is-better ratios.
METRICS = (
    (("kernels", "core_decomposition", "dblp", "speedup"),
     "CSR core_decomposition speedup (dblp)"),
    (("kernels", "core_decomposition", "lfr", "speedup"),
     "CSR core_decomposition speedup (lfr)"),
    (("engine", "speedup_warm_vs_direct"),
     "warm cache speedup vs direct"),
    (("truss_maintenance", "warm_hit_rate", "selective"),
     "selective truss warm hit rate"),
    (("serving", "speedup"),
     "async+batched serving speedup vs thread-per-request"),
    (("resilience", "success_rate"),
     "query success rate under 5% worker-kill plan"),
    (("resilience", "identical_rate"),
     "byte-identical answers under 5% worker-kill plan"),
    (("payload_plane", "shard_ipc_collapse"),
     "shard_ipc collapse: pickled / zero-copy transport"),
)


def _head_commit():
    try:
        out = subprocess.run(["git", "rev-parse", "HEAD"],
                             cwd=REPO_ROOT, capture_output=True,
                             text=True, timeout=10)
        if out.returncode == 0:
            return out.stdout.strip()
    except (OSError, subprocess.SubprocessError):
        pass
    return "unknown"


def _dig(doc, path):
    for part in path:
        if not isinstance(doc, dict) or part not in doc:
            return None
        doc = doc[part]
    return doc


def _pick_entries(entries, commit):
    """``(current, baseline)``: the entry for ``commit`` and the most
    recent prior entry recorded in the *same mode* (file order is
    append order).

    Quick mode shrinks graphs and query pools, which shifts even the
    dimensionless metrics (tiny inputs are overhead-dominated), so a
    quick entry is only ever compared against another quick entry and
    a full run against a full run.
    """
    current = None
    index = None
    for i, entry in enumerate(entries):
        if entry.get("commit") == commit:
            # HEAD may own one full and one quick entry; the one the
            # bench just (re)wrote carries the newest timestamp.
            if current is None or entry.get("recorded_at", "") \
                    >= current.get("recorded_at", ""):
                current = entry
                index = i
    if current is None and entries:
        # Bench ran before the commit existed (CI checks out a merge
        # commit, or a dirty tree): treat the newest entry as current.
        current = entries[-1]
        index = len(entries) - 1
    baseline = None
    for entry in reversed(entries[:index] if index else []):
        if bool(entry.get("quick")) == bool(current.get("quick")):
            baseline = entry
            break
    return current, baseline


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--threshold", type=float, default=0.2,
                        help="maximum tolerated fractional regression "
                             "(default 0.2 = 20%%)")
    parser.add_argument("--trajectory", default=TRAJECTORY_PATH,
                        help="path to BENCH_engine.json")
    args = parser.parse_args(argv)

    if not os.path.exists(args.trajectory):
        print("bench-regression: no trajectory file at {}; nothing to "
              "compare".format(args.trajectory))
        return 0
    with open(args.trajectory, "r", encoding="utf-8") as f:
        doc = json.load(f)
    entries = doc.get("entries", [])
    current, baseline = _pick_entries(entries, _head_commit())
    if current is None or baseline is None:
        print("bench-regression: no prior {} entry to compare "
              "against".format("quick-mode"
                               if current and current.get("quick")
                               else "full-mode"))
        return 0

    print("bench-regression: {} vs baseline {}".format(
        current.get("commit", "?")[:12],
        baseline.get("commit", "?")[:12]))
    failures = []
    for path, label in METRICS:
        new = _dig(current, path)
        old = _dig(baseline, path)
        if not isinstance(new, (int, float)) \
                or not isinstance(old, (int, float)) or old <= 0:
            print("  skip  {:<44} (not in both entries)".format(label))
            continue
        change = (new - old) / old
        status = "ok"
        if change < -args.threshold:
            status = "FAIL"
            failures.append((label, old, new, change))
        print("  {:<5} {:<44} {:.3g} -> {:.3g} ({:+.1%})".format(
            status, label, old, new, change))
    if failures:
        print("bench-regression: {} metric(s) regressed more than "
              "{:.0%}".format(len(failures), args.threshold))
        return 1
    print("bench-regression: within {:.0%} of baseline".format(
        args.threshold))
    return 0


if __name__ == "__main__":
    sys.exit(main())
