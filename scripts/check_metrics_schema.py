#!/usr/bin/env python
"""Metrics-plane schema checker (the CI docs job).

Boots a smoke server on a small generated graph, runs one query, and
validates both metrics surfaces against their contracts:

* ``GET /api/metrics`` -- the JSON document must carry the keys the
  dashboard and the Prometheus renderer read (uptime, request
  counters, engine counters/latency histograms with per-bucket data,
  cache counters, tracer occupancy);
* ``GET /metrics`` -- the Prometheus text exposition (format 0.0.4)
  must parse line by line: legal metric/label names, a ``# TYPE``
  header before any sample of that family, cumulative ``le`` buckets
  ending in ``+Inf``, and ``_count`` equal to the ``+Inf`` bucket.

Runs entirely in-process (no network dependency beyond loopback), so
a schema drift between the JSON plane and the exposition renderer
fails CI instead of a scrape.

Usage: python scripts/check_metrics_schema.py
"""

import json
import os
import re
import sys
import threading
import urllib.request

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
sys.path.insert(0, os.path.join(REPO_ROOT, "src"))

METRIC_NAME = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")
LABEL_NAME = re.compile(r"^[a-zA-Z_][a-zA-Z0-9_]*$")
SAMPLE = re.compile(
    r"^(?P<name>[a-zA-Z_:][a-zA-Z0-9_:]*)"
    r"(?:\{(?P<labels>.*)\})?"
    r" (?P<value>[^ ]+)(?: [0-9]+)?$")
LABEL_PAIR = re.compile(r'([a-zA-Z_][a-zA-Z0-9_]*)="((?:[^"\\]|\\.)*)"')

# The JSON metrics keys the dashboard and renderer contractually read.
ENGINE_KEYS = ("queue_depth", "in_flight", "workers", "counters",
               "latency", "traces", "resilience", "payloads")
# The payload-plane block (see repro.engine.payloads.plane_stats).
PAYLOAD_KEYS = ("transport", "shm_available", "shm_segments",
                "payload_bytes", "registry_entries", "attach_failures")
TRACE_KEYS = ("enabled", "capacity", "buffered", "recorded",
              "slow_queries", "slow_threshold_seconds")
HISTOGRAM_KEYS = ("count", "mean_ms", "p50_ms", "p95_ms", "max_ms",
                  "total_seconds", "buckets")
CACHE_KEYS = ("hits", "misses", "evictions", "invalidations", "entries")
# The resilience block the Prometheus renderer and the chaos CI job
# read (see repro.engine.retry.ResiliencePlane.snapshot).
RESILIENCE_KEYS = ("counters", "breakers", "quarantined", "degraded")
RESILIENCE_COUNTERS = ("retries", "retry_exhausted", "hedges",
                       "hedges_won", "hedges_lost", "quarantines",
                       "breaker_rejections", "payload_retries",
                       "batch_member_retries", "faults_injected")
BREAKER_KEYS = ("state", "consecutive_failures", "opens", "probes",
                "promotions", "degraded_seconds")
BREAKER_STATES = ("closed", "open", "half_open")


def boot_server():
    """A serving (server, base_url) pair over a small traced graph."""
    from repro.datasets import DblpConfig, generate_dblp_graph
    from repro.explorer.cexplorer import CExplorer
    from repro.server.app import make_server

    explorer = CExplorer(workers=2)
    explorer.add_graph("smoke", generate_dblp_graph(
        DblpConfig(n_authors=200, n_communities=6, seed=11)),
        shards=2)
    server = make_server(explorer, port=0)
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    base = "http://127.0.0.1:{}".format(server.server_address[1])
    # One real query so histograms, cache counters, and the trace
    # ring all have data to validate against.
    req = urllib.request.Request(
        base + "/api/search",
        data=json.dumps({"vertex": "Jim Gray", "k": 3,
                         "algorithm": "global"}).encode("utf-8"),
        headers={"Content-Type": "application/json"})
    urllib.request.urlopen(req).read()
    return server, base


def check_json_metrics(doc):
    """Yield problem strings for the ``/api/metrics`` document."""
    for key in ("uptime_seconds", "requests", "errors", "engine",
                "cache"):
        if key not in doc:
            yield "/api/metrics missing key {!r}".format(key)
    engine = doc.get("engine", {})
    for key in ENGINE_KEYS:
        if key not in engine:
            yield "engine doc missing key {!r}".format(key)
    for key in TRACE_KEYS:
        if key not in engine.get("traces", {}):
            yield "engine.traces missing key {!r}".format(key)
    for key in CACHE_KEYS:
        if key not in doc.get("cache", {}):
            yield "cache doc missing key {!r}".format(key)
    resilience = engine.get("resilience", {})
    for key in RESILIENCE_KEYS:
        if key not in resilience:
            yield "engine.resilience missing key {!r}".format(key)
    payloads = engine.get("payloads", {})
    for key in PAYLOAD_KEYS:
        if key not in payloads:
            yield "engine.payloads missing key {!r}".format(key)
    spill = doc.get("cache", {}).get("spill")
    if not isinstance(spill, dict) or "enabled" not in spill:
        yield "cache doc missing 'spill' sub-document"
    counters = resilience.get("counters", {})
    for key in RESILIENCE_COUNTERS:
        if key not in counters:
            yield ("resilience counters missing key "
                   "{!r}".format(key))
        elif not isinstance(counters.get(key), int) \
                or counters.get(key) < 0:
            yield ("resilience counter {!r} is {!r}, not a "
                   "non-negative int".format(key, counters.get(key)))
    breakers = resilience.get("breakers", {})
    for backend in ("process", "thread"):
        breaker = breakers.get(backend)
        if breaker is None:
            yield "no {!r} circuit breaker in resilience doc".format(
                backend)
            continue
        for key in BREAKER_KEYS:
            if key not in breaker:
                yield "breaker {!r} missing key {!r}".format(
                    backend, key)
        if breaker.get("state") not in BREAKER_STATES:
            yield "breaker {!r} has unknown state {!r}".format(
                backend, breaker.get("state"))
    latency = engine.get("latency", {})
    if "search" not in latency:
        yield "no 'search' latency histogram after a search request"
    for op, hist in latency.items():
        for key in HISTOGRAM_KEYS:
            if key not in hist:
                yield "histogram {!r} missing key {!r}".format(op, key)
        buckets = hist.get("buckets") or []
        if buckets:
            if buckets[-1][0] is not None:
                yield ("histogram {!r}: last bucket must be "
                       "open-ended (None bound)".format(op))
            if sum(count for _, count in buckets) != hist.get("count"):
                yield ("histogram {!r}: bucket counts do not sum to "
                       "count".format(op))


def check_exposition(text):
    """Yield problem strings for the Prometheus text exposition."""
    typed = {}
    series = {}
    if not text.endswith("\n"):
        yield "exposition must end with a newline"
    for lineno, line in enumerate(text.splitlines(), 1):
        if not line:
            continue
        if line.startswith("# TYPE "):
            parts = line.split()
            if len(parts) != 4 or parts[3] not in (
                    "counter", "gauge", "histogram", "summary",
                    "untyped"):
                yield "line {}: malformed TYPE: {}".format(lineno, line)
            else:
                typed[parts[2]] = parts[3]
            continue
        if line.startswith("# HELP "):
            continue
        if line.startswith("#"):
            continue
        match = SAMPLE.match(line)
        if match is None:
            yield "line {}: unparsable sample: {}".format(lineno, line)
            continue
        name = match.group("name")
        base = name
        for suffix in ("_bucket", "_sum", "_count"):
            if name.endswith(suffix) and name[:-len(suffix)] in typed:
                base = name[:-len(suffix)]
        if not METRIC_NAME.match(name):
            yield "line {}: bad metric name {!r}".format(lineno, name)
        if base not in typed:
            yield ("line {}: sample {!r} has no preceding TYPE "
                   "header".format(lineno, name))
        labels = {}
        body = match.group("labels")
        if body:
            consumed = LABEL_PAIR.sub("", body).strip(", ")
            if consumed:
                yield "line {}: malformed labels {{{}}}".format(
                    lineno, body)
            for label, value in LABEL_PAIR.findall(body):
                if not LABEL_NAME.match(label):
                    yield "line {}: bad label name {!r}".format(
                        lineno, label)
                labels[label] = value
        try:
            value = float(match.group("value"))
        except ValueError:
            yield "line {}: non-numeric value {!r}".format(
                lineno, match.group("value"))
            continue
        series.setdefault(base, []).append((name, labels, value))
    for base, kind in typed.items():
        if kind != "histogram":
            continue
        for problem in _check_histogram_series(
                base, series.get(base, [])):
            yield problem


def _check_histogram_series(base, samples):
    """Validate one histogram family: cumulative buckets, +Inf bound,
    ``_count`` agreement -- grouped by its non-``le`` labels."""
    groups = {}
    for name, labels, value in samples:
        ident = tuple(sorted((k, v) for k, v in labels.items()
                             if k != "le"))
        groups.setdefault(ident, []).append((name, labels, value))
    for ident, group in groups.items():
        buckets = [(labels["le"], value) for name, labels, value
                   in group if name == base + "_bucket"]
        counts = [value for name, _, value in group
                  if name == base + "_count"]
        if not buckets:
            continue
        values = [value for _, value in buckets]
        if values != sorted(values):
            yield "{} {}: bucket counts not cumulative".format(
                base, dict(ident))
        if buckets[-1][0] != "+Inf":
            yield "{} {}: last bucket bound is {!r}, not +Inf".format(
                base, dict(ident), buckets[-1][0])
        elif counts and counts[0] != buckets[-1][1]:
            yield "{} {}: _count {} != +Inf bucket {}".format(
                base, dict(ident), counts[0], buckets[-1][1])


def main(argv):
    server, base = boot_server()
    try:
        with urllib.request.urlopen(base + "/api/metrics") as resp:
            doc = json.loads(resp.read().decode("utf-8"))
        with urllib.request.urlopen(base + "/metrics") as resp:
            content_type = resp.headers.get("Content-Type", "")
            text = resp.read().decode("utf-8")
    finally:
        server.shutdown()
    problems = list(check_json_metrics(doc))
    if not content_type.startswith("text/plain"):
        problems.append(
            "/metrics Content-Type is {!r}".format(content_type))
    problems.extend(check_exposition(text))
    for family in ("repro_resilience_events_total",
                   "repro_breaker_state",
                   "repro_quarantined_payloads",
                   "repro_shm_segments",
                   "repro_payload_bytes",
                   "repro_payload_attach_failures_total"):
        if "\n# TYPE {} ".format(family) not in text:
            problems.append(
                "exposition missing family {!r}".format(family))
    for problem in problems:
        print("SCHEMA: {}".format(problem))
    if problems:
        print("{} metrics schema problem(s)".format(len(problems)))
        return 1
    samples = sum(1 for line in text.splitlines()
                  if line and not line.startswith("#"))
    print("metrics ok: JSON keys complete, {} exposition sample(s) "
          "parse".format(samples))
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
