#!/usr/bin/env python
"""Warm-restart smoke check (the CI persistence job).

Simulates an operator restart: a *cold* process builds a graph with a
persistent store directory, indexes it, answers a query, and exits; a
second *warm* process pointed at the same store must come up without
rebuilding anything.  Each phase runs in its own interpreter (the
script re-execs itself), so the warm path is exercised across a real
process boundary -- mmap'd frozen payloads, the serialized CL-tree,
and the result spill all have to survive on disk, not in memory.

The warm phase fails the check unless:

* ``warm_restores == 1`` and ``warm_restore_failures == 0``;
* the index manager reports zero CL-tree builds after ``index()``;
* the cached query is answered from the result spill
  (``spill_hits >= 1``);
* the community returned matches the cold phase byte for byte;
* no shared-memory segments are left behind.

Usage: python scripts/check_warm_restart.py
"""

import json
import os
import shutil
import subprocess
import sys
import tempfile

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
sys.path.insert(0, os.path.join(REPO_ROOT, "src"))


def _serialise(answer):
    """Communities as sorted member-name lists, comparable as JSON."""
    return sorted(sorted(community.member_names())
                  for community in answer)


def _explorer(store):
    from repro.datasets import DblpConfig, generate_dblp_graph
    from repro.explorer.cexplorer import CExplorer

    graph = generate_dblp_graph(
        DblpConfig(n_authors=300, n_communities=8, seed=13))
    explorer = CExplorer(workers=2, store_dir=store)
    explorer.add_graph("g", graph)
    return explorer, graph.label(15)


def run_cold(store, out_path):
    explorer, vertex = _explorer(store)
    try:
        explorer.index()
        answer = explorer.search("acq", vertex, k=4)
        saves = explorer.engine.stats.get("store_saves")
        if saves != 1:
            raise SystemExit(
                "cold phase: expected 1 store save, saw {}".format(saves))
    finally:
        explorer.engine.shutdown()  # flushes cache entries to the spill
    with open(out_path, "w", encoding="utf-8") as handle:
        json.dump({"answer": _serialise(answer)}, handle)


def run_warm(store, out_path):
    from repro.engine import payloads as payload_plane

    explorer, vertex = _explorer(store)
    try:
        stats = explorer.engine.stats
        if stats.get("warm_restores") != 1:
            raise SystemExit("warm phase: index was not restored from disk")
        if stats.get("warm_restore_failures") != 0:
            raise SystemExit("warm phase: restore reported failures")
        explorer.index()
        builds = explorer.indexes.stats("g")["builds"]
        if builds != 0:
            raise SystemExit(
                "warm phase: expected 0 CL-tree builds, saw {}".format(
                    builds))
        answer = explorer.search("acq", vertex, k=4)
        cache = explorer.engine.cache.stats()
        if cache["spill_hits"] < 1:
            raise SystemExit(
                "warm phase: query missed the result spill "
                "(spill_hits={})".format(cache["spill_hits"]))
    finally:
        explorer.engine.shutdown()
    leaked = payload_plane.live_segments()
    if leaked:
        raise SystemExit(
            "warm phase: {} shared-memory segment(s) leaked".format(leaked))
    with open(out_path, "w", encoding="utf-8") as handle:
        json.dump({"answer": _serialise(answer)}, handle)


def _phase(name, store, out_path):
    env = dict(os.environ)
    env["PYTHONPATH"] = os.path.join(REPO_ROOT, "src") + (
        os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else "")
    proc = subprocess.run(
        [sys.executable, os.path.abspath(__file__),
         "--phase", name, "--store", store, "--out", out_path],
        env=env, cwd=REPO_ROOT)
    if proc.returncode != 0:
        raise SystemExit("{} phase failed (exit {})".format(
            name, proc.returncode))
    with open(out_path, encoding="utf-8") as handle:
        return json.load(handle)


def main(argv):
    if "--phase" in argv:
        phase = argv[argv.index("--phase") + 1]
        store = argv[argv.index("--store") + 1]
        out_path = argv[argv.index("--out") + 1]
        if phase == "cold":
            run_cold(store, out_path)
        elif phase == "warm":
            run_warm(store, out_path)
        else:
            raise SystemExit("unknown phase: {}".format(phase))
        return 0

    workdir = tempfile.mkdtemp(prefix="warm-restart-")
    try:
        store = os.path.join(workdir, "store")
        cold = _phase("cold", store, os.path.join(workdir, "cold.json"))
        warm = _phase("warm", store, os.path.join(workdir, "warm.json"))
        if cold["answer"] != warm["answer"]:
            print("warm answer diverged from cold answer", file=sys.stderr)
            return 1
        print("warm restart ok: index restored without a rebuild, "
              "{} communit{} matched across restart".format(
                  len(cold["answer"]),
                  "y" if len(cold["answer"]) == 1 else "ies"))
        return 0
    finally:
        shutil.rmtree(workdir, ignore_errors=True)


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
