#!/usr/bin/env python
"""Documentation link checker (the CI docs job).

Scans the repo's markdown docs for relative links and verifies every
target exists, so README/ARCHITECTURE references cannot rot silently.
External (http/https/mailto) links and intra-page anchors are skipped
-- CI must not depend on network reachability.

Usage: python scripts/check_docs.py [file.md ...]
Defaults to README.md and everything under docs/.
"""

import glob
import os
import re
import sys

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))

# [text](target) -- excluding images' inner ! is irrelevant, same rule.
LINK = re.compile(r"\[[^\]]*\]\(([^)\s]+)\)")

SKIP_PREFIXES = ("http://", "https://", "mailto:", "#")


def check_file(path):
    """Yield (line_number, target) for every broken relative link."""
    base = os.path.dirname(path)
    with open(path, encoding="utf-8") as handle:
        for lineno, line in enumerate(handle, 1):
            for target in LINK.findall(line):
                if target.startswith(SKIP_PREFIXES):
                    continue
                resolved = os.path.normpath(
                    os.path.join(base, target.split("#", 1)[0]))
                if not os.path.exists(resolved):
                    yield lineno, target


def main(argv):
    files = argv or sorted(
        [os.path.join(REPO_ROOT, "README.md")]
        + glob.glob(os.path.join(REPO_ROOT, "docs", "**", "*.md"),
                    recursive=True))
    broken = 0
    for path in files:
        if not os.path.exists(path):
            print("MISSING DOC: {}".format(path))
            broken += 1
            continue
        for lineno, target in check_file(path):
            print("{}:{}: broken link -> {}".format(
                os.path.relpath(path, REPO_ROOT), lineno, target))
            broken += 1
    if broken:
        print("{} broken link(s)".format(broken))
        return 1
    print("docs ok: {} file(s), all relative links resolve".format(
        len(files)))
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
