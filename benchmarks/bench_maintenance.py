"""Ablation -- dynamic core maintenance vs full recomputation.

The server keeps indexes over graphs users edit; this bench quantifies
the win of patching core numbers per edge update instead of re-running
the O(n + m) decomposition, and the shape assertion checks the win is
at least an order of magnitude on the DBLP workload.
"""

import time

from repro.core.kcore import core_decomposition
from repro.core.ktruss import truss_decomposition
from repro.core.maintenance import CoreMaintainer
from repro.core.truss_maintenance import TrussMaintainer

from bench_common import dblp_sized, write_artifact


def _churn_edges(graph, count):
    """A deterministic batch of (u, v) edges around the highest-degree
    vertices: the hot region where updates are most expensive."""
    hubs = sorted(graph.vertices(), key=graph.degree, reverse=True)[:20]
    edges = []
    i = 0
    for u in hubs:
        for v in hubs:
            if u < v and not graph.has_edge(u, v):
                edges.append((u, v))
                i += 1
                if i >= count:
                    return edges
    return edges


def test_incremental_insert_batch(benchmark):
    graph = dblp_sized(2000)
    edges = _churn_edges(graph, 50)

    def run():
        work = graph.copy()
        m = CoreMaintainer(work)
        for u, v in edges:
            m.insert_edge(u, v)
        return m

    maintainer = benchmark.pedantic(run, rounds=3, iterations=1)
    assert maintainer.verify()


def test_recompute_insert_batch(benchmark):
    """The baseline: full decomposition after every insertion."""
    graph = dblp_sized(2000)
    edges = _churn_edges(graph, 50)

    def run():
        work = graph.copy()
        core = None
        for u, v in edges:
            work.add_edge(u, v)
            core = core_decomposition(work)
        return core

    core = benchmark.pedantic(run, rounds=3, iterations=1)
    assert core is not None


def test_maintenance_speedup_shape(benchmark):
    """Shape: per-update patching beats per-update recomputation by
    a widening margin as the graph grows (>= 5x at 4,000 authors --
    the patch cost is bounded by the update's neighbourhood, the
    recompute cost by n + m)."""
    graph = dblp_sized(4000)
    edges = _churn_edges(graph, 50)

    def measure():
        work = graph.copy()
        m = CoreMaintainer(work)
        start = time.perf_counter()
        for u, v in edges:
            m.insert_edge(u, v)
        for u, v in edges:
            m.remove_edge(u, v)
        incremental = time.perf_counter() - start
        assert m.verify()

        work2 = graph.copy()
        start = time.perf_counter()
        for u, v in edges:
            work2.add_edge(u, v)
            core_decomposition(work2)
        for u, v in edges:
            work2.remove_edge(u, v)
            core_decomposition(work2)
        recompute = time.perf_counter() - start
        return incremental, recompute

    incremental, recompute = benchmark.pedantic(measure, rounds=1,
                                                iterations=1)
    assert recompute > 5 * incremental, (incremental, recompute)
    write_artifact(
        "maintenance.txt",
        "Ablation - dynamic core maintenance (100 edge updates, 4k "
        "DBLP)\n\n"
        "  incremental patching: {:.4f}s\n"
        "  full recomputation:   {:.4f}s\n"
        "  speedup: {:.0f}x".format(incremental, recompute,
                                    recompute / incremental))


def test_truss_maintenance_speedup_shape(benchmark):
    """Shape: the truss maintainer's localized fixed-point patching
    beats per-update truss recomputation by a widening margin (>= 5x
    at 1,200 authors -- a patch touches only the triangles of the
    affected region, a recompute pays the O(m^1.5) support pass plus
    the full peel)."""
    graph = dblp_sized(1200)
    edges = _churn_edges(graph, 20)

    def measure():
        work = graph.copy()
        m = TrussMaintainer(work)
        start = time.perf_counter()
        for u, v in edges:
            m.add_edge(u, v)
        for u, v in edges:
            m.remove_edge(u, v)
        incremental = time.perf_counter() - start
        assert m.verify()

        work2 = graph.copy()
        start = time.perf_counter()
        for u, v in edges:
            work2.add_edge(u, v)
            truss_decomposition(work2)
        for u, v in edges:
            work2.remove_edge(u, v)
            truss_decomposition(work2)
        recompute = time.perf_counter() - start
        return incremental, recompute

    incremental, recompute = benchmark.pedantic(measure, rounds=1,
                                                iterations=1)
    assert recompute > 5 * incremental, (incremental, recompute)
    write_artifact(
        "truss_maintenance.txt",
        "Ablation - dynamic truss maintenance (40 edge updates, 1.2k "
        "DBLP)\n\n"
        "  incremental patching: {:.4f}s\n"
        "  full recomputation:   {:.4f}s\n"
        "  speedup: {:.0f}x".format(incremental, recompute,
                                    recompute / incremental))
