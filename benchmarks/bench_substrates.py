"""Micro-benchmarks for the data-structure substrates.

Not a paper figure -- these watch the constants of the pieces every
query touches (union-find, the updatable heap, the name trie, the
query cache, core decomposition) so a regression in a substrate is
visible before it shows up as a blurry slowdown in E1.
"""

from repro.core.kcore import core_decomposition
from repro.explorer.autocomplete import NameIndex
from repro.explorer.sessions import QueryCache
from repro.util.heaps import UpdatableMinHeap
from repro.util.unionfind import UnionFind


def test_unionfind_union_find(benchmark):
    def run():
        uf = UnionFind(range(2000))
        for i in range(0, 1999):
            uf.union(i, i + 1)
        return sum(1 for i in range(2000) if uf.find(i) == uf.find(0))

    assert benchmark(run) == 2000


def test_heap_push_update_pop(benchmark):
    def run():
        heap = UpdatableMinHeap()
        for i in range(1500):
            heap.push(i, 1500 - i)
        for i in range(0, 1500, 3):
            heap.push(i, -i)
        drained = 0
        while heap:
            heap.pop()
            drained += 1
        return drained

    assert benchmark(run) == 1500


def test_core_decomposition_dblp(benchmark, dblp):
    core = benchmark(core_decomposition, dblp)
    assert len(core) == dblp.vertex_count


def test_name_trie_build(benchmark, dblp):
    index = benchmark(NameIndex.from_graph, dblp)
    assert len(index) == dblp.vertex_count


def test_name_trie_suggest(benchmark, dblp):
    index = NameIndex.from_graph(dblp)
    names = benchmark(index.suggest, "j", 10)
    assert names


def test_query_cache_hit(benchmark):
    cache = QueryCache(capacity=512)
    keys = [cache.key("g", "acq", i, 4) for i in range(400)]
    for key in keys:
        cache.put(key, ["x"])

    def run():
        hits = 0
        for key in keys:
            if cache.get(key) is not None:
                hits += 1
        return hits

    assert benchmark(run) == 400


def test_graph_copy(benchmark, dblp):
    copied = benchmark(dblp.copy)
    assert copied.edge_count == dblp.edge_count
