"""Importable helpers shared by the benchmarks.

These used to live in ``benchmarks/conftest.py``, but test modules
importing helpers *by module name* from a conftest collide with
``tests/conftest.py`` whenever both directories end up on ``sys.path``
(pytest inserts each rootdir during collection, and two modules cannot
both be ``conftest``).  Fixtures stay in the conftest -- pytest wires
those by mechanism, not by name -- while anything benchmarks import
explicitly lives here under a collision-free name.
"""

import json
import os
import subprocess
import time

from repro.datasets import DblpConfig, generate_dblp_graph

OUT_DIR = os.path.join(os.path.dirname(__file__), "out")
REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))

# The perf trajectory file: stable-schema, repo-root, one entry per
# commit, so successive perf PRs have a baseline to beat.
TRAJECTORY_SCHEMA = 1
TRAJECTORY_PATH = os.path.join(REPO_ROOT, "BENCH_engine.json")


def write_artifact(name, text):
    """Persist a regenerated table/figure under benchmarks/out/."""
    os.makedirs(OUT_DIR, exist_ok=True)
    path = os.path.join(OUT_DIR, name)
    with open(path, "w", encoding="utf-8") as f:
        f.write(text if text.endswith("\n") else text + "\n")
    return path


def current_commit():
    """The HEAD commit hash, or "unknown" outside a git checkout."""
    try:
        out = subprocess.run(
            ["git", "rev-parse", "HEAD"], cwd=REPO_ROOT,
            capture_output=True, text=True, timeout=10)
        if out.returncode == 0:
            return out.stdout.strip()
    except (OSError, subprocess.SubprocessError):
        pass
    return "unknown"


def update_bench_trajectory(section, payload, quick=False):
    """Merge ``payload`` under ``section`` of this commit's trajectory
    entry in ``BENCH_engine.json`` (repo root).

    Schema (stable; future perf PRs append entries)::

        {"schema": 1,
         "entries": [{"commit": ..., "recorded_at": ..., "quick": ...,
                      "cpu_count": ..., "kernels": {...},
                      "engine": {...}}]}

    One entry per ``(commit, quick)``: re-running a bench for the
    same commit in the same mode updates its entry in place (sections
    merge, so the kernel bench and the engine bench can each
    contribute their part), while quick (CI smoke) and full runs
    record separately -- their numbers are not comparable, and the
    no-regression gate only ever compares entries of matching mode.
    """
    commit = current_commit()
    doc = {"schema": TRAJECTORY_SCHEMA, "entries": []}
    if os.path.exists(TRAJECTORY_PATH):
        try:
            with open(TRAJECTORY_PATH, "r", encoding="utf-8") as f:
                loaded = json.load(f)
            if loaded.get("schema") == TRAJECTORY_SCHEMA:
                doc = loaded
        except (OSError, ValueError):
            pass
    entry = None
    for candidate in doc["entries"]:
        if candidate.get("commit") == commit \
                and bool(candidate.get("quick")) == bool(quick):
            entry = candidate
            break
    if entry is None:
        entry = {"commit": commit}
        doc["entries"].append(entry)
    entry["recorded_at"] = time.strftime("%Y-%m-%dT%H:%M:%SZ",
                                         time.gmtime())
    entry["cpu_count"] = os.cpu_count()
    entry["quick"] = bool(quick)
    existing = entry.setdefault(section, {})
    existing.update(payload)
    with open(TRAJECTORY_PATH, "w", encoding="utf-8") as f:
        json.dump(doc, f, indent=2, sort_keys=True)
        f.write("\n")
    return TRAJECTORY_PATH


def dblp_sized(n, seed=7):
    """A generated graph with ~n authors (for scaling sweeps)."""
    communities = max(4, n // 85)
    return generate_dblp_graph(DblpConfig(n_authors=n,
                                          n_communities=communities,
                                          seed=seed))
