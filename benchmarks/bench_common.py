"""Importable helpers shared by the benchmarks.

These used to live in ``benchmarks/conftest.py``, but test modules
importing helpers *by module name* from a conftest collide with
``tests/conftest.py`` whenever both directories end up on ``sys.path``
(pytest inserts each rootdir during collection, and two modules cannot
both be ``conftest``).  Fixtures stay in the conftest -- pytest wires
those by mechanism, not by name -- while anything benchmarks import
explicitly lives here under a collision-free name.
"""

import os

from repro.datasets import DblpConfig, generate_dblp_graph

OUT_DIR = os.path.join(os.path.dirname(__file__), "out")


def write_artifact(name, text):
    """Persist a regenerated table/figure under benchmarks/out/."""
    os.makedirs(OUT_DIR, exist_ok=True)
    path = os.path.join(OUT_DIR, name)
    with open(path, "w", encoding="utf-8") as f:
        f.write(text if text.endswith("\n") else text + "\n")
    return path


def dblp_sized(n, seed=7):
    """A generated graph with ~n authors (for scaling sweeps)."""
    communities = max(4, n // 85)
    return generate_dblp_graph(DblpConfig(n_authors=n,
                                          n_communities=communities,
                                          seed=seed))
