"""E12 -- the multi-vertex ACQ variant (Section 3.2; the "+" button of
Figure 1).

Times queries with |Q| in {1, 2, 3} query vertices from the same
community.  Shape: multi-vertex queries stay in the same latency class
as single-vertex ones (the candidate space only shrinks), so the
interactive loop survives adding authors.
"""

import pytest

from repro.core.acq import acq_search

from bench_common import write_artifact


def _query_group(dblp, dblp_index, jim, count):
    """Jim Gray plus (count - 1) members of his own community."""
    base = acq_search(dblp, jim, 4, index=dblp_index)[0]
    others = [v for v in sorted(base.vertices) if v != jim]
    return [jim] + others[:count - 1]


@pytest.mark.parametrize("count", [1, 2, 3])
def test_multi_vertex_query(benchmark, dblp, dblp_index, jim, count):
    benchmark.group = "multi-vertex"
    qs = _query_group(dblp, dblp_index, jim, count)
    communities = benchmark(acq_search, dblp, qs if count > 1 else jim,
                            4, index=dblp_index)
    assert communities
    community = communities[0]
    for q in qs:
        assert q in community


def test_multi_vertex_narrows_results(benchmark, dblp, dblp_index, jim):
    """Adding query vertices can only narrow the community (the shared
    keyword set is an intersection over Q)."""

    def run():
        single = acq_search(dblp, jim, 4, index=dblp_index)
        qs = _query_group(dblp, dblp_index, jim, 3)
        multi = acq_search(dblp, qs, 4, index=dblp_index)
        return single, multi

    single, multi = benchmark.pedantic(run, rounds=2, iterations=1)
    assert single and multi
    assert len(multi[0].shared_keywords) <= \
        len(dblp.keywords(jim))

    write_artifact(
        "multi_vertex.txt",
        "Section 3.2 - multi-vertex ACQ variant\n\n"
        "  |Q|=1: {} communities, theme size {}\n"
        "  |Q|=3: {} communities, theme size {}\n".format(
            len(single), len(single[0].shared_keywords),
            len(multi), len(multi[0].shared_keywords)))
