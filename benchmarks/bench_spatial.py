"""Extension bench -- spatial-aware community search (ref [3]).

Times the AppInc binary search on generated spatial graphs and checks
the headline shape of the SAC model: the returned community is
geographically far tighter than the structure-only community of the
same query.
"""

from repro.algorithms.global_search import global_search
from repro.algorithms.spatial import spatial_community_search
from repro.datasets.spatial import euclidean, generate_spatial_graph

from bench_common import write_artifact


def _workload():
    return generate_spatial_graph(n=600, communities=8, seed=21)


def test_sac_query_latency(benchmark):
    graph, coords, _ = _workload()
    communities, radius = benchmark(spatial_community_search, graph,
                                    coords, 0, 2)
    assert communities
    assert radius is not None


def test_sac_vs_global_tightness(benchmark):
    """Shape: SAC's covering radius around q is much smaller than the
    radius of the plain k-core community."""

    def measure():
        graph, coords, _ = _workload()
        q, k = 0, 2
        sac, radius = spatial_community_search(graph, coords, q, k)
        glob = global_search(graph, q, k)
        assert sac and glob
        global_radius = max(euclidean(coords[v], coords[q])
                            for v in glob[0])
        return radius, global_radius, len(sac[0]), len(glob[0])

    radius, global_radius, sac_n, glob_n = benchmark.pedantic(
        measure, rounds=1, iterations=1)
    assert radius < 0.5 * global_radius
    write_artifact(
        "spatial_sac.txt",
        "Extension - spatial-aware community search (AppInc)\n\n"
        "  SAC community:    {:4d} members, radius {:.3f}\n"
        "  Global community: {:4d} members, radius {:.3f}\n\n"
        "SAC keeps the community geographically tight while meeting\n"
        "the same degree constraint.".format(sac_n, radius, glob_n,
                                             global_radius))


def test_spatial_generator_cost(benchmark):
    graph, coords, truth = benchmark(generate_spatial_graph, 600, 8)
    assert graph.vertex_count == 600
