"""Shared fixtures for the benchmark harness.

Every benchmark regenerates one of the paper's figures/tables (see the
experiment index in DESIGN.md).  Numbers are machine-dependent; the
*shape* assertions (who wins, what scales how) are what reproduce the
paper.  Each bench also writes a human-readable artefact into
``benchmarks/out/`` so the regenerated tables can be inspected after a
run (they are the inputs to EXPERIMENTS.md).

Only fixtures live here; helpers that benchmarks import by name
(``write_artifact``, ``dblp_sized``) are in :mod:`bench_common`, so
this conftest never collides with ``tests/conftest.py``.
"""

import os

import pytest

from repro.core.cltree import build_cltree
from repro.datasets import generate_dblp_graph
from repro.explorer.cexplorer import CExplorer


def pytest_addoption(parser):
    parser.addoption(
        "--quick", action="store_true", default=False,
        help="capped bench mode for CI smoke jobs: smaller query "
             "pools, relaxed shape assertions (also enabled by "
             "REPRO_BENCH_QUICK=1)")


@pytest.fixture(scope="session")
def quick(request):
    """Whether the capped CI smoke mode is on (flag or env)."""
    return bool(request.config.getoption("--quick")
                or os.environ.get("REPRO_BENCH_QUICK", "").lower()
                in ("1", "true", "yes", "on"))


@pytest.fixture(scope="session")
def dblp():
    """The session's main workload: the default 2,000-author graph."""
    return generate_dblp_graph()


@pytest.fixture(scope="session")
def dblp_index(dblp):
    """Prebuilt CL-tree over the main workload (the offline step)."""
    return build_cltree(dblp)


@pytest.fixture(scope="session")
def jim(dblp):
    """The paper's walkthrough query vertex."""
    return dblp.id_of("Jim Gray")


@pytest.fixture(scope="session")
def explorer(dblp):
    ex = CExplorer()
    ex.add_graph("dblp", dblp)
    ex.index()
    return ex
