"""Shared fixtures for the benchmark harness.

Every benchmark regenerates one of the paper's figures/tables (see the
experiment index in DESIGN.md).  Numbers are machine-dependent; the
*shape* assertions (who wins, what scales how) are what reproduce the
paper.  Each bench also writes a human-readable artefact into
``benchmarks/out/`` so the regenerated tables can be inspected after a
run (they are the inputs to EXPERIMENTS.md).
"""

import os

import pytest

from repro.core.cltree import build_cltree
from repro.datasets import DblpConfig, generate_dblp_graph
from repro.explorer.cexplorer import CExplorer

OUT_DIR = os.path.join(os.path.dirname(__file__), "out")


def write_artifact(name, text):
    """Persist a regenerated table/figure under benchmarks/out/."""
    os.makedirs(OUT_DIR, exist_ok=True)
    path = os.path.join(OUT_DIR, name)
    with open(path, "w", encoding="utf-8") as f:
        f.write(text if text.endswith("\n") else text + "\n")
    return path


@pytest.fixture(scope="session")
def dblp():
    """The session's main workload: the default 2,000-author graph."""
    return generate_dblp_graph()


@pytest.fixture(scope="session")
def dblp_index(dblp):
    """Prebuilt CL-tree over the main workload (the offline step)."""
    return build_cltree(dblp)


@pytest.fixture(scope="session")
def jim(dblp):
    """The paper's walkthrough query vertex."""
    return dblp.id_of("Jim Gray")


@pytest.fixture(scope="session")
def explorer(dblp):
    ex = CExplorer()
    ex.add_graph("dblp", dblp)
    ex.index()
    return ex


def dblp_sized(n, seed=7):
    """A generated graph with ~n authors (for scaling sweeps)."""
    communities = max(4, n // 85)
    return generate_dblp_graph(DblpConfig(n_authors=n,
                                          n_communities=communities,
                                          seed=seed))
