"""E9 -- Section 2's motivation: community *search* is online,
community *detection* "may take a long time ... not suitable for quick
or online retrieval".

Times the query-based CS methods (with the index prebuilt, as the
system runs them) against whole-graph CD methods on the same DBLP
workload, and asserts the orders-of-magnitude gap the paper's argument
rests on.
"""

import time

from repro.algorithms.codicil import codicil
from repro.algorithms.label_propagation import label_propagation
from repro.algorithms.local_search import local_search
from repro.algorithms.newman_girvan import newman_girvan
from repro.core.acq import acq_search

from bench_common import dblp_sized, write_artifact


def test_cs_acq_latency(benchmark, dblp, jim, dblp_index):
    benchmark.group = "cs-online"
    assert benchmark(acq_search, dblp, jim, 4, index=dblp_index)


def test_cs_local_latency(benchmark, dblp, jim):
    benchmark.group = "cs-online"
    assert benchmark(local_search, dblp, jim, 4)


def test_cd_codicil_latency(benchmark, dblp):
    benchmark.group = "cd-offline"
    result = benchmark.pedantic(codicil, args=(dblp,), rounds=2,
                                iterations=1)
    assert result


def test_cd_label_propagation_latency(benchmark, dblp):
    benchmark.group = "cd-offline"
    result = benchmark.pedantic(label_propagation, args=(dblp,),
                                kwargs={"seed": 1}, rounds=2,
                                iterations=1)
    assert result


def test_cd_newman_girvan_latency(benchmark):
    """NG is so slow it only runs on a 300-vertex subsample -- which is
    the paper's point about CD methods."""
    benchmark.group = "cd-offline"
    graph = dblp_sized(300)
    result = benchmark.pedantic(
        newman_girvan, args=(graph,), kwargs={"max_removals": 40},
        rounds=1, iterations=1)
    assert result[0]


def test_cs_vs_cd_gap(benchmark, dblp, jim, dblp_index):
    """The headline shape: an indexed CS query is >= 100x faster than
    running CODICIL over the graph."""

    def measure():
        start = time.perf_counter()
        acq_search(dblp, jim, 4, index=dblp_index)
        cs = time.perf_counter() - start
        start = time.perf_counter()
        codicil(dblp)
        cd = time.perf_counter() - start
        return cs, cd

    cs, cd = benchmark.pedantic(measure, rounds=1, iterations=1)
    assert cd > 100 * cs, (cs, cd)
    write_artifact(
        "cs_vs_cd.txt",
        "Section 2 - online CS vs offline CD (2,000-author DBLP)\n\n"
        "  ACQ query (indexed): {:8.4f}s\n"
        "  CODICIL (whole graph): {:6.2f}s\n"
        "  ratio: {:.0f}x\n\n"
        "Paper: CD solutions 'may take a long time to find all the\n"
        "communities for a large graph, and so they are not suitable\n"
        "for quick or online retrieval of communities.'".format(
            cs, cd, cd / cs))
