"""Engine bench -- repeated/overlapping searches direct vs. through
the query engine, plus the sharded fan-out path.

Interactive exploration traffic repeats itself (every display click
re-runs its search, hub authors get probed by many users), which is
exactly what the engine's result cache converts into dictionary hits.
This bench measures throughput over a repeated query pool: direct
algorithm calls (the seed behaviour), engine cold (cache filling as
the pool drains), engine warm (every query a cache hit), engine warm
with 4 workers (the server's concurrent configuration), and a
4-shard/4-worker engine draining the same pool cold through the
partition-parallel fan-out.

Shape assertions: the warm engine answers the repeated workload at
least 10x faster than direct execution, and the cold engine is never
worse than ~2x direct (cache bookkeeping must stay in the noise).

Quick mode (``--quick`` or ``REPRO_BENCH_QUICK=1``, the CI smoke
job) shrinks the query pool and relaxes the speedup floor so the whole
bench finishes in seconds on a shared runner while still exercising
every path and emitting the timing artifact.

Artifact: ``benchmarks/out/engine.json`` (machine-readable, like the
other benches' tables are human-readable).
"""

import json
import time

from repro.algorithms.registry import get_cs_algorithm
from repro.analysis.batch import pick_query_vertices
from repro.explorer.cexplorer import CExplorer

from bench_common import write_artifact

K = 4


def _pool_shape(quick):
    """(distinct vertices, repeats) -- capped in quick mode."""
    return (4, 2) if quick else (12, 4)


def _query_pool(graph, quick):
    """Distinct feasible vertices, each repeated, round robin
    (overlapping traffic, not back-to-back duplicates)."""
    distinct, repeats = _pool_shape(quick)
    return pick_query_vertices(graph, K, distinct, seed=23) * repeats


def _throughput(n_queries, seconds):
    return round(n_queries / seconds, 2) if seconds > 0 else float("inf")


def test_engine_vs_direct(benchmark, dblp, dblp_index, quick):
    pool = _query_pool(dblp, quick)
    algo = get_cs_algorithm("acq")

    def run():
        results = {}

        # Direct execution, prebuilt index: the seed server's inline
        # path, every repeat pays the full algorithm.
        start = time.perf_counter()
        for q in pool:
            algo(dblp, q, K, index=dblp_index)
        direct = time.perf_counter() - start
        results["direct"] = direct

        # Engine, 1 worker, cold cache: repeats hit as the pool drains.
        explorer = CExplorer(workers=1, max_queue=len(pool) + 1)
        explorer.add_graph("dblp", dblp, build="eager")
        start = time.perf_counter()
        for q in pool:
            explorer.engine.search_sync("acq", q, k=K, timeout=60)
        results["engine_cold_1w"] = time.perf_counter() - start

        # Same engine, warm cache: every query is a hit.
        start = time.perf_counter()
        for q in pool:
            explorer.engine.search_sync("acq", q, k=K, timeout=60)
        results["engine_warm_1w"] = time.perf_counter() - start
        results["cache"] = explorer.cache.stats()
        explorer.engine.shutdown()

        # 4 workers, futures submitted up front (the server's shape:
        # many handler threads waiting on one pool), then a warm pass.
        explorer4 = CExplorer(workers=4, max_queue=len(pool) + 1)
        explorer4.add_graph("dblp", dblp, build="eager")
        start = time.perf_counter()
        futures = [explorer4.engine.search("acq", q, k=K, timeout=60)
                   for q in pool]
        for future in futures:
            future.result(60)
        results["engine_cold_4w"] = time.perf_counter() - start
        start = time.perf_counter()
        futures = [explorer4.engine.search("acq", q, k=K, timeout=60)
                   for q in pool]
        for future in futures:
            future.result(60)
        results["engine_warm_4w"] = time.perf_counter() - start
        explorer4.engine.shutdown()

        # 4 shards on 4 workers, cold: the partition-parallel fan-out
        # path (per-shard certification + engine-level merge) drains
        # the same pool; per-shard skew lands in the artifact.
        sharded = CExplorer(workers=4, max_queue=len(pool) + 1)
        sharded.add_graph("dblp", dblp, shards=4, partitioner="greedy")
        start = time.perf_counter()
        for q in pool:
            sharded.engine.search_sync("acq", q, k=K, timeout=60)
        results["engine_sharded_cold_4w"] = time.perf_counter() - start
        results["sharding"] = \
            sharded.engine.stats.snapshot().get("sharding", {})
        sharded.engine.shutdown()
        return results

    results = benchmark.pedantic(run, rounds=1, iterations=1)
    direct = results["direct"]
    warm = results["engine_warm_1w"]
    seconds = {key: val for key, val in results.items()
               if key not in ("cache", "sharding")}

    # The acceptance shape: a warm cache beats recomputation -- >= 10x
    # on the full pool, >= 2x even on the tiny quick-mode pool.
    min_speedup = 2.0 if quick else 10.0
    assert direct > min_speedup * warm, (direct, warm)
    # Engine bookkeeping on a cold cache stays within 2x of direct
    # (the repeats already win some of that back); quick mode's tiny
    # pool amortises less, so it gets more slack.
    assert results["engine_cold_1w"] < (3 if quick else 2) * direct, \
        results
    # The warm pool served everything from cache.
    assert results["cache"]["hits"] >= len(pool)

    n = len(pool)
    distinct, repeats = _pool_shape(quick)
    doc = {
        "queries": n,
        "distinct": distinct,
        "repeats": repeats,
        "k": K,
        "quick": quick,
        "seconds": {key: round(val, 6)
                    for key, val in seconds.items()},
        "throughput_qps": {key: _throughput(n, val)
                           for key, val in seconds.items()},
        "speedup_warm_vs_direct": round(direct / warm, 1),
        "cache": results["cache"],
        "sharding": results["sharding"],
    }
    write_artifact("engine.json", json.dumps(doc, indent=2))
