"""Engine bench -- repeated/overlapping searches direct vs. through
the query engine, the sharded fan-out path per execution backend, and
the CSR kernel trajectory.

Interactive exploration traffic repeats itself (every display click
re-runs its search, hub authors get probed by many users), which is
exactly what the engine's result cache converts into dictionary hits.
This bench measures throughput over a repeated query pool: direct
algorithm calls (the seed behaviour), engine cold (cache filling as
the pool drains), engine warm (every query a cache hit), engine warm
with 4 workers (the server's concurrent configuration), and a
4-shard/4-worker engine draining the same pool cold through the
partition-parallel fan-out -- once per execution backend (``thread``
and ``process``), so the GIL-dodging process pool has a recorded
baseline against the thread pool on every runner.

The kernel bench times the structural hot paths both ways: the seed
adjacency-set ``core_decomposition`` against the CSR fast path over a
:class:`~repro.graph.frozen.FrozenGraph` snapshot, on the LFR
(planted-partition) and synthetic-DBLP workloads.  Shape assertion:
CSR wins by >= 2x (the PR-3 acceptance floor).

Shape assertions for the engine path: the warm engine answers the
repeated workload at least 10x faster than direct execution, the cold
engine is never worse than ~2x direct, and sharded/process results
stay identical to unsharded/thread execution.  The process-beats-
thread assertion only fires on a multi-core runner with the full
pool -- on one core the process pool cannot win, it can only record.

Quick mode (``--quick`` or ``REPRO_BENCH_QUICK=1``, the CI smoke
job) shrinks the query pool and relaxes the speedup floor so the whole
bench finishes in seconds on a shared runner while still exercising
every path and emitting the timing artifacts.

Artifacts: ``benchmarks/out/engine.json`` (the per-run snapshot) and
``BENCH_engine.json`` at the repo root -- the stable-schema perf
*trajectory*, one entry per commit (kernel timings cold/warm, sharded
per backend), so future perf PRs have a baseline to beat.
"""

import json
import os
import time

from repro.algorithms.registry import get_cs_algorithm
from repro.analysis.batch import pick_query_vertices
from repro.core.kcore import core_decomposition
from repro.datasets import generate_planted_partition
from repro.explorer.cexplorer import CExplorer
from repro.graph.frozen import freeze

from bench_common import update_bench_trajectory, write_artifact

K = 4


def _pool_shape(quick):
    """(distinct vertices, repeats) -- capped in quick mode."""
    return (4, 2) if quick else (12, 4)


def _query_pool(graph, quick):
    """Distinct feasible vertices, each repeated, round robin
    (overlapping traffic, not back-to-back duplicates)."""
    distinct, repeats = _pool_shape(quick)
    return pick_query_vertices(graph, K, distinct, seed=23) * repeats


def _throughput(n_queries, seconds):
    return round(n_queries / seconds, 2) if seconds > 0 else float("inf")


def _time_kernel(fn, arg, repeats):
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        fn(arg)
        best = min(best, time.perf_counter() - start)
    return best


def test_csr_kernel_speedup(benchmark, dblp, quick):
    """The tentpole's kernel floor: CSR ``core_decomposition`` over a
    frozen snapshot beats the seed adjacency-set path >= 2x on the
    LFR and DBLP bench graphs."""
    # The LFR graph stays full-size even in quick mode: a kernel rep
    # costs single-digit milliseconds, and below ~1k vertices the
    # vectorised path's per-round overhead hides the win it exists to
    # measure.
    lfr, _ = generate_planted_partition(n=2000, communities=8,
                                        avg_degree=10, seed=11)
    workloads = {"dblp": dblp, "lfr": lfr}
    repeats = 3 if quick else 7

    def run():
        doc = {}
        for name, graph in workloads.items():
            frozen = freeze(graph)
            assert core_decomposition(frozen) == \
                core_decomposition(graph)
            set_s = _time_kernel(core_decomposition, graph, repeats)
            csr_s = _time_kernel(core_decomposition, frozen, repeats)
            doc[name] = {
                "n": graph.vertex_count,
                "m": graph.edge_count,
                "set_seconds": round(set_s, 6),
                "csr_seconds": round(csr_s, 6),
                "speedup": round(set_s / csr_s, 2) if csr_s else
                float("inf"),
            }
        return doc

    doc = benchmark.pedantic(run, rounds=1, iterations=1)
    try:
        import numpy  # noqa: F401 - availability probe only
        vectorised = True
    except ImportError:
        vectorised = False
    for name, rec in doc.items():
        rec["vectorised"] = vectorised
        if vectorised:
            # The 2x acceptance floor belongs to the vectorised
            # kernel; the pure-Python CSR fallback only has to not
            # lose to the set path.
            assert rec["speedup"] >= 2.0, (name, rec)
        else:
            assert rec["speedup"] >= 0.9, (name, rec)
    update_bench_trajectory(
        "kernels", {"core_decomposition": doc}, quick=quick)
    write_artifact("kernels.json", json.dumps(doc, indent=2))


def _fringe_updates(graph, count):
    """A deterministic batch of insertable (u, v) edges among the
    lowest-degree vertices: the steady drip of profile edits far from
    the hot communities (the workload truss-aware invalidation is
    designed to survive)."""
    quiet = sorted(graph.vertices(),
                   key=lambda v: (graph.degree(v), v))[:80]
    edges = []
    for u in quiet:
        for v in quiet:
            if u < v and not graph.has_edge(u, v):
                edges.append((u, v))
                if len(edges) >= count:
                    return edges
    return edges


def test_truss_cache_retention(benchmark, dblp, quick):
    """The truss-maintenance acceptance shape: under a maintenance
    drip, the truss-aware selective invalidation keeps a strictly
    better warm-cache hit rate on k-truss traffic than the evict-all
    baseline -- and with both maintainers attached, no eviction ever
    falls back to evict-all."""
    distinct = 4 if quick else 10
    rounds = 2 if quick else 6
    pool = pick_query_vertices(dblp, K, distinct, seed=31)

    def run_variant(truss_aware):
        explorer = CExplorer(workers=1, max_queue=256)
        explorer.add_graph("dblp", dblp.copy())
        gateway = (explorer.truss_maintainer() if truss_aware
                   else explorer.maintainer())
        updates = _fringe_updates(explorer.indexes.graph("dblp"),
                                  rounds)
        for q in pool:                       # warm fill
            explorer.search("k-truss", q, k=K)
        baseline = explorer.cache.stats()
        start = time.perf_counter()
        for u, v in updates:
            gateway.insert_edge(u, v)
            for q in pool:
                explorer.search("k-truss", q, k=K)
        seconds = time.perf_counter() - start
        stats = explorer.cache.stats()
        requeries = len(pool) * len(updates)
        hits = stats["hits"] - baseline["hits"]
        explorer.engine.shutdown()
        return {
            "requeries": requeries,
            "hits": hits,
            "hit_rate": round(hits / requeries, 4) if requeries else 0.0,
            "seconds": round(seconds, 6),
            "invalidations_by_reason": stats["invalidations_by_reason"],
        }

    def run():
        return {"selective": run_variant(True),
                "evict_all": run_variant(False)}

    doc = benchmark.pedantic(run, rounds=1, iterations=1)
    selective, evictall = doc["selective"], doc["evict_all"]
    # The acceptance floor: truss-aware invalidation strictly beats
    # blind eviction on the warm re-query workload.
    assert selective["hit_rate"] > evictall["hit_rate"], doc
    # With core + truss maintainers attached, every eviction is a
    # scoped cascade: the evict-all fallback counter stays at zero.
    assert selective["invalidations_by_reason"]["evict-all"] == 0, doc
    assert evictall["invalidations_by_reason"]["truss-cascade"] == 0
    write_artifact("truss_cache.json", json.dumps(doc, indent=2))
    update_bench_trajectory("truss_maintenance", {
        "queries": len(pool),
        "rounds": rounds,
        "k": K,
        "warm_hit_rate": {"selective": selective["hit_rate"],
                          "evict_all": evictall["hit_rate"]},
        "requery_seconds": {"selective": selective["seconds"],
                            "evict_all": evictall["seconds"]},
    }, quick=quick)


def test_engine_vs_direct(benchmark, dblp, dblp_index, quick):
    pool = _query_pool(dblp, quick)
    algo = get_cs_algorithm("acq")

    def run():
        results = {}

        # Direct execution, prebuilt index: the seed server's inline
        # path, every repeat pays the full algorithm.
        start = time.perf_counter()
        for q in pool:
            algo(dblp, q, K, index=dblp_index)
        direct = time.perf_counter() - start
        results["direct"] = direct

        # Engine, 1 worker, cold cache: repeats hit as the pool drains.
        explorer = CExplorer(workers=1, max_queue=len(pool) + 1)
        explorer.add_graph("dblp", dblp, build="eager")
        start = time.perf_counter()
        for q in pool:
            explorer.engine.search_sync("acq", q, k=K, timeout=60)
        results["engine_cold_1w"] = time.perf_counter() - start

        # Same engine, warm cache: every query is a hit.
        start = time.perf_counter()
        for q in pool:
            explorer.engine.search_sync("acq", q, k=K, timeout=60)
        results["engine_warm_1w"] = time.perf_counter() - start
        results["cache"] = explorer.cache.stats()
        explorer.engine.shutdown()

        # 4 workers, futures submitted up front (the server's shape:
        # many handler threads waiting on one pool), then a warm pass.
        explorer4 = CExplorer(workers=4, max_queue=len(pool) + 1)
        explorer4.add_graph("dblp", dblp, build="eager")
        start = time.perf_counter()
        futures = [explorer4.engine.search("acq", q, k=K, timeout=60)
                   for q in pool]
        for future in futures:
            future.result(60)
        results["engine_cold_4w"] = time.perf_counter() - start
        start = time.perf_counter()
        futures = [explorer4.engine.search("acq", q, k=K, timeout=60)
                   for q in pool]
        for future in futures:
            future.result(60)
        results["engine_warm_4w"] = time.perf_counter() - start
        explorer4.engine.shutdown()

        # 4 shards on 4 workers, cold, once per execution backend:
        # the partition-parallel fan-out path (per-shard certification
        # + engine-level merge) drains the same pool; the thread pool
        # shares the GIL, the process pool ships frozen CSR payloads
        # and escapes it.  Results must agree exactly.
        sharded_results = {}
        for backend in ("thread", "process"):
            sharded = CExplorer(workers=4, max_queue=len(pool) + 1,
                                backend=backend)
            sharded.add_graph("dblp", dblp, shards=4,
                              partitioner="greedy")
            start = time.perf_counter()
            answers = [sharded.engine.search_sync("acq", q, k=K,
                                                  timeout=60)
                       for q in pool]
            results["engine_sharded_cold_4w_{}".format(backend)] = \
                time.perf_counter() - start
            sharded_results[backend] = answers
            if backend == "thread":
                results["sharding"] = \
                    sharded.engine.stats.snapshot().get("sharding", {})
            else:
                results["process_fallbacks"] = \
                    sharded.engine.stats.get("process_fallbacks")
                results["index_build_fallbacks"] = \
                    sharded.indexes.build_fallbacks
            sharded.engine.shutdown()
        assert sharded_results["thread"] == sharded_results["process"]
        results["engine_sharded_cold_4w"] = \
            results["engine_sharded_cold_4w_thread"]
        return results

    results = benchmark.pedantic(run, rounds=1, iterations=1)
    direct = results["direct"]
    warm = results["engine_warm_1w"]
    seconds = {key: val for key, val in results.items()
               if key not in ("cache", "sharding", "process_fallbacks",
                              "index_build_fallbacks")}

    # The acceptance shape: a warm cache beats recomputation -- >= 10x
    # on the full pool, >= 2x even on the tiny quick-mode pool.
    min_speedup = 2.0 if quick else 10.0
    assert direct > min_speedup * warm, (direct, warm)
    # Engine bookkeeping on a cold cache stays within 2x of direct
    # (the repeats already win some of that back); quick mode's tiny
    # pool amortises less, so it gets more slack.
    assert results["engine_cold_1w"] < (3 if quick else 2) * direct, \
        results
    # The warm pool served everything from cache.
    assert results["cache"]["hits"] >= len(pool)
    # No silent degradation: the process pass really ran in the pool
    # (neither shard jobs nor index builds fell back in-process).
    assert results["process_fallbacks"] == 0, results
    assert results["index_build_fallbacks"] == 0, results
    # On a genuinely parallel runner with the full pool, escaping the
    # GIL must pay on the cold sharded pass; a 1-2 core runner (or the
    # tiny quick pool) can only record the numbers.
    if not quick and (os.cpu_count() or 1) >= 4:
        assert results["engine_sharded_cold_4w_process"] < \
            results["engine_sharded_cold_4w_thread"], results

    n = len(pool)
    distinct, repeats = _pool_shape(quick)
    doc = {
        "queries": n,
        "distinct": distinct,
        "repeats": repeats,
        "k": K,
        "quick": quick,
        "seconds": {key: round(val, 6)
                    for key, val in seconds.items()},
        "throughput_qps": {key: _throughput(n, val)
                           for key, val in seconds.items()},
        "speedup_warm_vs_direct": round(direct / warm, 1),
        "cache": results["cache"],
        "sharding": results["sharding"],
    }
    write_artifact("engine.json", json.dumps(doc, indent=2))
    update_bench_trajectory("engine", {
        "queries": n,
        "k": K,
        "seconds": doc["seconds"],
        "speedup_warm_vs_direct": doc["speedup_warm_vs_direct"],
        "sharded_cold_by_backend": {
            "thread": doc["seconds"]["engine_sharded_cold_4w_thread"],
            "process": doc["seconds"]["engine_sharded_cold_4w_process"],
        },
    }, quick=quick)
