"""Engine bench -- repeated/overlapping searches direct vs. through
the query engine, the sharded fan-out path per execution backend, and
the CSR kernel trajectory.

Interactive exploration traffic repeats itself (every display click
re-runs its search, hub authors get probed by many users), which is
exactly what the engine's result cache converts into dictionary hits.
This bench measures throughput over a repeated query pool: direct
algorithm calls (the seed behaviour), engine cold (cache filling as
the pool drains), engine warm (every query a cache hit), engine warm
with 4 workers (the server's concurrent configuration), and a
4-shard/4-worker engine draining the same pool cold through the
partition-parallel fan-out -- once per execution backend (``thread``
and ``process``), so the GIL-dodging process pool has a recorded
baseline against the thread pool on every runner.

The kernel bench times the structural hot paths both ways: the seed
adjacency-set ``core_decomposition`` against the CSR fast path over a
:class:`~repro.graph.frozen.FrozenGraph` snapshot, on the LFR
(planted-partition) and synthetic-DBLP workloads.  Shape assertion:
CSR wins by >= 2x (the PR-3 acceptance floor).

Shape assertions for the engine path: the warm engine answers the
repeated workload at least 10x faster than direct execution, the cold
engine is never worse than ~2x direct, and sharded/process results
stay identical to unsharded/thread execution.  The process-beats-
thread assertion only fires on a multi-core runner with the full
pool -- on one core the process pool cannot win, it can only record.

Quick mode (``--quick`` or ``REPRO_BENCH_QUICK=1``, the CI smoke
job) shrinks the query pool and relaxes the speedup floor so the whole
bench finishes in seconds on a shared runner while still exercising
every path and emitting the timing artifacts.

Artifacts: ``benchmarks/out/engine.json`` (the per-run snapshot) and
``BENCH_engine.json`` at the repo root -- the stable-schema perf
*trajectory*, one entry per commit (kernel timings cold/warm, sharded
per backend), so future perf PRs have a baseline to beat.
"""

import json
import os
import time

import repro.engine.sharding as _sharding
from repro.algorithms.registry import get_cd_algorithm, get_cs_algorithm
from repro.analysis.batch import pick_query_vertices
from repro.core.kcore import core_decomposition
from repro.datasets import generate_planted_partition
from repro.explorer.cexplorer import CExplorer
from repro.graph.attributed import AttributedGraph
from repro.graph.frozen import freeze
from repro.util.errors import CExplorerError

from bench_common import dblp_sized, update_bench_trajectory, \
    write_artifact

K = 4


def _pool_shape(quick):
    """(distinct vertices, repeats) -- capped in quick mode."""
    return (4, 2) if quick else (12, 4)


def _query_pool(graph, quick):
    """Distinct feasible vertices, each repeated, round robin
    (overlapping traffic, not back-to-back duplicates)."""
    distinct, repeats = _pool_shape(quick)
    return pick_query_vertices(graph, K, distinct, seed=23) * repeats


def _throughput(n_queries, seconds):
    return round(n_queries / seconds, 2) if seconds > 0 else float("inf")


def _time_kernel(fn, arg, repeats):
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        fn(arg)
        best = min(best, time.perf_counter() - start)
    return best


def test_csr_kernel_speedup(benchmark, dblp, quick):
    """The tentpole's kernel floor: CSR ``core_decomposition`` over a
    frozen snapshot beats the seed adjacency-set path >= 2x on the
    LFR and DBLP bench graphs."""
    # The LFR graph stays full-size even in quick mode: a kernel rep
    # costs single-digit milliseconds, and below ~1k vertices the
    # vectorised path's per-round overhead hides the win it exists to
    # measure.
    lfr, _ = generate_planted_partition(n=2000, communities=8,
                                        avg_degree=10, seed=11)
    workloads = {"dblp": dblp, "lfr": lfr}
    repeats = 3 if quick else 7

    def run():
        doc = {}
        for name, graph in workloads.items():
            frozen = freeze(graph)
            assert core_decomposition(frozen) == \
                core_decomposition(graph)
            set_s = _time_kernel(core_decomposition, graph, repeats)
            csr_s = _time_kernel(core_decomposition, frozen, repeats)
            doc[name] = {
                "n": graph.vertex_count,
                "m": graph.edge_count,
                "set_seconds": round(set_s, 6),
                "csr_seconds": round(csr_s, 6),
                "speedup": round(set_s / csr_s, 2) if csr_s else
                float("inf"),
            }
        return doc

    doc = benchmark.pedantic(run, rounds=1, iterations=1)
    try:
        import numpy  # noqa: F401 - availability probe only
        vectorised = True
    except ImportError:
        vectorised = False
    for name, rec in doc.items():
        rec["vectorised"] = vectorised
        if vectorised:
            # The 2x acceptance floor belongs to the vectorised
            # kernel; the pure-Python CSR fallback only has to not
            # lose to the set path.
            assert rec["speedup"] >= 2.0, (name, rec)
        else:
            assert rec["speedup"] >= 0.9, (name, rec)
    update_bench_trajectory(
        "kernels", {"core_decomposition": doc}, quick=quick)
    write_artifact("kernels.json", json.dumps(doc, indent=2))


def _fringe_updates(graph, count):
    """A deterministic batch of insertable (u, v) edges among the
    lowest-degree vertices: the steady drip of profile edits far from
    the hot communities (the workload truss-aware invalidation is
    designed to survive)."""
    quiet = sorted(graph.vertices(),
                   key=lambda v: (graph.degree(v), v))[:80]
    edges = []
    for u in quiet:
        for v in quiet:
            if u < v and not graph.has_edge(u, v):
                edges.append((u, v))
                if len(edges) >= count:
                    return edges
    return edges


def test_truss_cache_retention(benchmark, dblp, quick):
    """The truss-maintenance acceptance shape: under a maintenance
    drip, the truss-aware selective invalidation keeps a strictly
    better warm-cache hit rate on k-truss traffic than the evict-all
    baseline -- and with both maintainers attached, no eviction ever
    falls back to evict-all."""
    distinct = 4 if quick else 10
    rounds = 2 if quick else 6
    pool = pick_query_vertices(dblp, K, distinct, seed=31)

    def run_variant(truss_aware):
        explorer = CExplorer(workers=1, max_queue=256)
        explorer.add_graph("dblp", dblp.copy())
        gateway = (explorer.truss_maintainer() if truss_aware
                   else explorer.maintainer())
        updates = _fringe_updates(explorer.indexes.graph("dblp"),
                                  rounds)
        for q in pool:                       # warm fill
            explorer.search("k-truss", q, k=K)
        baseline = explorer.cache.stats()
        start = time.perf_counter()
        for u, v in updates:
            gateway.insert_edge(u, v)
            for q in pool:
                explorer.search("k-truss", q, k=K)
        seconds = time.perf_counter() - start
        stats = explorer.cache.stats()
        requeries = len(pool) * len(updates)
        hits = stats["hits"] - baseline["hits"]
        explorer.engine.shutdown()
        return {
            "requeries": requeries,
            "hits": hits,
            "hit_rate": round(hits / requeries, 4) if requeries else 0.0,
            "seconds": round(seconds, 6),
            "invalidations_by_reason": stats["invalidations_by_reason"],
        }

    def run():
        return {"selective": run_variant(True),
                "evict_all": run_variant(False)}

    doc = benchmark.pedantic(run, rounds=1, iterations=1)
    selective, evictall = doc["selective"], doc["evict_all"]
    # The acceptance floor: truss-aware invalidation strictly beats
    # blind eviction on the warm re-query workload.
    assert selective["hit_rate"] > evictall["hit_rate"], doc
    # With core + truss maintainers attached, every eviction is a
    # scoped cascade: the evict-all fallback counter stays at zero.
    assert selective["invalidations_by_reason"]["evict-all"] == 0, doc
    assert evictall["invalidations_by_reason"]["truss-cascade"] == 0
    write_artifact("truss_cache.json", json.dumps(doc, indent=2))
    update_bench_trajectory("truss_maintenance", {
        "queries": len(pool),
        "rounds": rounds,
        "k": K,
        "warm_hit_rate": {"selective": selective["hit_rate"],
                          "evict_all": evictall["hit_rate"]},
        "requery_seconds": {"selective": selective["seconds"],
                            "evict_all": evictall["seconds"]},
    }, quick=quick)


def test_worker_full_query(benchmark, dblp, quick):
    """The whole-query acceptance shape: finishing a sharded ACQ query
    through the whole-query worker pipeline (keyword enumeration on
    the frozen CSR payload, postings fast path, vectorised peel
    initialisation) beats the parent-verification path (enumeration
    on mutable set adjacency in the parent) on the sharded DBLP
    workload -- even serially, before any process parallelism."""
    distinct, repeats = _pool_shape(quick)
    pool = pick_query_vertices(dblp, K, distinct, seed=23) * repeats
    finish = _sharding.worker_finish

    def disabled_finish(*args, **kwargs):
        """Force the pre-refactor parent-verification fallback."""
        raise CExplorerError("worker finish disabled for baseline")

    def run_variant(worker, backend="thread"):
        explorer = CExplorer(workers=4, max_queue=len(pool) + 8,
                             backend=backend)
        explorer.add_graph("dblp", dblp, shards=4,
                           partitioner="greedy")
        _sharding.worker_finish = finish if worker else disabled_finish
        try:
            # Warm the structural caches (shard cores, payloads) so
            # the timed passes compare the finishing phase, not
            # first-query index builds both variants share.
            explorer.search("acq", pool[0], k=K, use_cache=False)
            start = time.perf_counter()
            answers = [explorer.search("acq", q, k=K, use_cache=False)
                       for q in pool]
            seconds = time.perf_counter() - start
            stats = {
                "worker_full_query":
                    explorer.engine.stats.get("worker_full_query"),
                "full_query_fallbacks":
                    explorer.engine.stats.get("full_query_fallbacks"),
            }
            return seconds, answers, stats
        finally:
            _sharding.worker_finish = finish
            explorer.engine.shutdown()

    def run():
        parent_s, parent_out, _ = run_variant(worker=False)
        worker_s, worker_out, stats = run_variant(worker=True)
        process_s, process_out, _ = run_variant(worker=True,
                                                backend="process")
        assert parent_out == worker_out == process_out
        return {
            "parent_verification_seconds": round(parent_s, 6),
            "worker_full_query_seconds": round(worker_s, 6),
            "worker_full_query_process_seconds": round(process_s, 6),
            "speedup": round(parent_s / worker_s, 2) if worker_s
            else float("inf"),
            "stats": stats,
        }

    doc = benchmark.pedantic(run, rounds=1, iterations=1)
    # Every query of the worker variant ran the whole-query pipeline.
    assert doc["stats"]["worker_full_query"] >= len(pool)
    assert doc["stats"]["full_query_fallbacks"] == 0
    # The acceptance floor: the worker pipeline beats parent
    # verification.  The tiny quick pool mostly measures fixed
    # overheads on a shared runner, so it only has to not lose badly.
    if quick:
        assert doc["speedup"] >= 0.7, doc
    else:
        assert doc["speedup"] > 1.0, doc
    write_artifact("worker_full_query.json", json.dumps(doc, indent=2))
    update_bench_trajectory("worker_full_query", {
        "queries": len(pool),
        "k": K,
        "seconds": {
            "parent_verification":
                doc["parent_verification_seconds"],
            "worker_full_query": doc["worker_full_query_seconds"],
            "worker_full_query_process":
                doc["worker_full_query_process_seconds"],
        },
        "speedup": doc["speedup"],
    }, quick=quick)


def test_payload_plane(benchmark, dblp, quick):
    """The zero-copy payload transport on the sharded-cold path: every
    query is preceded by invalidating the shard index entries, so each
    fan-out must re-ship fresh per-shard CSR snapshots to the process
    workers (the worker payload cache never hits).  Under the
    ``pickle`` transport each ship copies and re-unpickles the whole
    payload in the worker; under ``shm`` the workers attach the
    parent's shared-memory segments zero-copy and the keyword sidecar
    stays undecoded, so the ``shard_ipc`` latency op -- transport
    overhead: ship plus in-worker payload resolution -- collapses.
    Results must be identical; the collapse ratio is the trajectory
    metric the regression gate watches."""
    from repro.engine import payloads as payload_plane

    distinct, repeats = _pool_shape(quick)
    pool = pick_query_vertices(dblp, K, distinct, seed=29) * repeats

    def run_variant(transport):
        previous = payload_plane.configure(transport)
        explorer = CExplorer(workers=4, max_queue=len(pool) + 8,
                             backend="process")
        try:
            # Two shards: per-shard payloads stay large enough that
            # transport cost dominates the pool's fixed per-job
            # scheduling floor, which both variants pay equally.
            explorer.add_graph("dblp", dblp, shards=2,
                               partitioner="greedy")
            # Warm the parent-side structural caches (CL-tree, full
            # payload) and spawn the pool once -- the timed pass
            # compares the per-shard transport, not index builds and
            # worker forks both variants share.
            explorer.search("acq", pool[0], k=K, use_cache=False)
            shard_entries = explorer.indexes.shard_names("dblp")

            def ipc_total():
                snap = explorer.engine.snapshot()
                return (snap["latency"].get("shard_ipc")
                        or {}).get("total_seconds", 0.0)

            base_ipc = ipc_total()
            start = time.perf_counter()
            answers = []
            for q in pool:
                # Cold rounds: bump every shard entry's version so the
                # next fan-out re-ships each shard payload instead of
                # hitting the worker-side payload cache.
                for entry in shard_entries:
                    explorer.indexes.invalidate(entry)
                answers.append(explorer.search("acq", q, k=K,
                                               use_cache=False))
            seconds = time.perf_counter() - start
            ipc = ipc_total() - base_ipc
            plane = explorer.engine.snapshot()["payloads"]
            return seconds, ipc, plane, answers
        finally:
            explorer.engine.shutdown()
            payload_plane.configure(previous)

    def run():
        pickled_s, pickled_ipc, _, pickled_out = run_variant("pickle")
        shm_s, shm_ipc, plane, shm_out = run_variant("shm")
        assert pickled_out == shm_out
        return {
            "queries": len(pool),
            "pickle_seconds": round(pickled_s, 6),
            "shm_seconds": round(shm_s, 6),
            "pickle_shard_ipc_seconds": round(pickled_ipc, 6),
            "shm_shard_ipc_seconds": round(shm_ipc, 6),
            "shard_ipc_collapse": round(pickled_ipc / shm_ipc, 2)
            if shm_ipc > 0 else float("inf"),
            "shm_available": plane["shm_available"],
            "attach_failures": plane["attach_failures"],
        }

    doc = benchmark.pedantic(run, rounds=1, iterations=1)
    # Zero-copy attach must never fall back on a healthy host.
    assert doc["attach_failures"] == 0, doc
    if doc["shm_available"]:
        # The acceptance floor: shared-memory transport collapses the
        # per-shard ship cost.  Quick mode's tiny pool still shows the
        # collapse -- the cost scales with payload bytes, which quick
        # mode does not shrink per ship.
        floor = 2.0 if quick else 5.0
        collapse = doc["shard_ipc_collapse"]
        assert collapse >= floor, doc
    write_artifact("payload_plane.json", json.dumps(doc, indent=2))
    entry = dict(doc)
    if entry["shard_ipc_collapse"] == float("inf"):
        entry["shard_ipc_collapse"] = None
    update_bench_trajectory("payload_plane", entry, quick=quick)


def _disjoint_copies(graph, copies):
    """``copies`` disjoint copies of ``graph`` in one AttributedGraph
    (the embarrassingly-parallel per-component detection workload)."""
    combined = AttributedGraph()
    for c in range(copies):
        offset = c * graph.vertex_count
        for v in graph.vertices():
            label = graph.label(v)
            combined.add_vertex(
                None if label is None else "c{}:{}".format(c, label),
                graph.keywords(v))
        for u, v in graph.edges():
            combined.add_edge(u + offset, v + offset)
    return combined


def test_detect_components(benchmark, quick):
    """The CD acceptance shape: per-component detection jobs over the
    frozen payload are byte-identical between inline and process
    execution, and -- on a genuinely parallel runner -- the process
    pool turns the per-component fan-out into wall-clock speedup."""
    copies = 2 if quick else 4
    graph = _disjoint_copies(dblp_sized(220, seed=7), copies)
    algorithm, params = "codicil", {"seed": 3}

    def run_variant(backend):
        explorer = CExplorer(workers=4, max_queue=64, backend=backend)
        explorer.add_graph("g", graph)
        try:
            start = time.perf_counter()
            result = explorer.detect(algorithm, per_component=True,
                                     **params)
            seconds = time.perf_counter() - start
            jobs = explorer.engine.snapshot()["detect_parallelism"]
            return seconds, result, jobs
        finally:
            explorer.engine.shutdown()

    def run():
        start = time.perf_counter()
        inline_result = get_cd_algorithm(algorithm)(graph, **params)
        inline_s = time.perf_counter() - start
        thread_s, thread_out, jobs = run_variant("thread")
        process_s, process_out, _ = run_variant("process")
        assert thread_out == process_out
        return {
            "algorithm": algorithm,
            "components": jobs["last_jobs"],
            "inline_whole_graph_seconds": round(inline_s, 6),
            "components_thread_seconds": round(thread_s, 6),
            "components_process_seconds": round(process_s, 6),
            "communities": len(thread_out),
        }

    doc = benchmark.pedantic(run, rounds=1, iterations=1)
    assert doc["components"] == copies
    # Real parallelism must pay on a multi-core runner; a 1-2 core
    # host (or the tiny quick workload) can only record the numbers.
    if not quick and (os.cpu_count() or 1) >= 4:
        assert doc["components_process_seconds"] < \
            doc["components_thread_seconds"], doc
    write_artifact("detect_components.json", json.dumps(doc, indent=2))
    update_bench_trajectory("detect", {
        "algorithm": algorithm,
        "components": doc["components"],
        "seconds": {
            "inline_whole_graph": doc["inline_whole_graph_seconds"],
            "components_thread": doc["components_thread_seconds"],
            "components_process": doc["components_process_seconds"],
        },
    }, quick=quick)


def test_engine_vs_direct(benchmark, dblp, dblp_index, quick):
    pool = _query_pool(dblp, quick)
    algo = get_cs_algorithm("acq")

    def run():
        results = {}

        # Direct execution, prebuilt index: the seed server's inline
        # path, every repeat pays the full algorithm.
        start = time.perf_counter()
        for q in pool:
            algo(dblp, q, K, index=dblp_index)
        direct = time.perf_counter() - start
        results["direct"] = direct

        # Engine, 1 worker, cold cache: repeats hit as the pool drains.
        explorer = CExplorer(workers=1, max_queue=len(pool) + 1)
        explorer.add_graph("dblp", dblp, build="eager")
        start = time.perf_counter()
        for q in pool:
            explorer.engine.search_sync("acq", q, k=K, timeout=60)
        results["engine_cold_1w"] = time.perf_counter() - start

        # Same engine, warm cache: every query is a hit.
        start = time.perf_counter()
        for q in pool:
            explorer.engine.search_sync("acq", q, k=K, timeout=60)
        results["engine_warm_1w"] = time.perf_counter() - start
        results["cache"] = explorer.cache.stats()
        explorer.engine.shutdown()

        # 4 workers, futures submitted up front (the server's shape:
        # many handler threads waiting on one pool), then a warm pass.
        explorer4 = CExplorer(workers=4, max_queue=len(pool) + 1)
        explorer4.add_graph("dblp", dblp, build="eager")
        start = time.perf_counter()
        futures = [explorer4.engine.search("acq", q, k=K, timeout=60)
                   for q in pool]
        for future in futures:
            future.result(60)
        results["engine_cold_4w"] = time.perf_counter() - start
        start = time.perf_counter()
        futures = [explorer4.engine.search("acq", q, k=K, timeout=60)
                   for q in pool]
        for future in futures:
            future.result(60)
        results["engine_warm_4w"] = time.perf_counter() - start
        explorer4.engine.shutdown()

        # 4 shards on 4 workers, cold, once per execution backend:
        # the partition-parallel fan-out path (per-shard certification
        # + engine-level merge) drains the same pool; the thread pool
        # shares the GIL, the process pool ships frozen CSR payloads
        # and escapes it.  Results must agree exactly.
        sharded_results = {}
        for backend in ("thread", "process"):
            sharded = CExplorer(workers=4, max_queue=len(pool) + 1,
                                backend=backend)
            sharded.add_graph("dblp", dblp, shards=4,
                              partitioner="greedy")
            start = time.perf_counter()
            answers = [sharded.engine.search_sync("acq", q, k=K,
                                                  timeout=60)
                       for q in pool]
            results["engine_sharded_cold_4w_{}".format(backend)] = \
                time.perf_counter() - start
            sharded_results[backend] = answers
            if backend == "thread":
                results["sharding"] = \
                    sharded.engine.stats.snapshot().get("sharding", {})
            else:
                results["process_fallbacks"] = \
                    sharded.engine.stats.get("process_fallbacks")
                results["index_build_fallbacks"] = \
                    sharded.indexes.build_fallbacks
            sharded.engine.shutdown()
        assert sharded_results["thread"] == sharded_results["process"]
        results["engine_sharded_cold_4w"] = \
            results["engine_sharded_cold_4w_thread"]
        return results

    results = benchmark.pedantic(run, rounds=1, iterations=1)
    direct = results["direct"]
    warm = results["engine_warm_1w"]
    seconds = {key: val for key, val in results.items()
               if key not in ("cache", "sharding", "process_fallbacks",
                              "index_build_fallbacks")}

    # The acceptance shape: a warm cache beats recomputation -- >= 10x
    # on the full pool, >= 2x even on the tiny quick-mode pool.
    min_speedup = 2.0 if quick else 10.0
    assert direct > min_speedup * warm, (direct, warm)
    # Engine bookkeeping on a cold cache stays within 2x of direct
    # (the repeats already win some of that back); quick mode's tiny
    # pool amortises less, so it gets more slack.
    assert results["engine_cold_1w"] < (3 if quick else 2) * direct, \
        results
    # The warm pool served everything from cache.
    assert results["cache"]["hits"] >= len(pool)
    # No silent degradation: the process pass really ran in the pool
    # (neither shard jobs nor index builds fell back in-process).
    assert results["process_fallbacks"] == 0, results
    assert results["index_build_fallbacks"] == 0, results
    # On a genuinely parallel runner with the full pool, escaping the
    # GIL must pay on the cold sharded pass; a 1-2 core runner (or the
    # tiny quick pool) can only record the numbers.
    if not quick and (os.cpu_count() or 1) >= 4:
        assert results["engine_sharded_cold_4w_process"] < \
            results["engine_sharded_cold_4w_thread"], results

    n = len(pool)
    distinct, repeats = _pool_shape(quick)
    doc = {
        "queries": n,
        "distinct": distinct,
        "repeats": repeats,
        "k": K,
        "quick": quick,
        "seconds": {key: round(val, 6)
                    for key, val in seconds.items()},
        "throughput_qps": {key: _throughput(n, val)
                           for key, val in seconds.items()},
        "speedup_warm_vs_direct": round(direct / warm, 1),
        "cache": results["cache"],
        "sharding": results["sharding"],
    }
    write_artifact("engine.json", json.dumps(doc, indent=2))
    update_bench_trajectory("engine", {
        "queries": n,
        "k": K,
        "seconds": doc["seconds"],
        "speedup_warm_vs_direct": doc["speedup_warm_vs_direct"],
        "sharded_cold_by_backend": {
            "thread": doc["seconds"]["engine_sharded_cold_4w_thread"],
            "process": doc["seconds"]["engine_sharded_cold_4w_process"],
        },
    }, quick=quick)


def test_concurrent_serving(benchmark, dblp, quick):
    """The serving acceptance shape: the asyncio front-end with
    cross-query batching answers a concurrent overlapping workload
    >= 1.5x faster than the thread-per-request baseline.

    The workload is the thundering herd the batcher exists for: in
    each round, every client POSTs the same ``/v1/search`` at the
    same instant (a barrier), so none of them can be saved by the
    result cache -- the baseline pays one full search per client,
    the batched server one per round.  Both variants run over real
    HTTP against a fresh explorer; responses must be identical.
    """
    import json as _json
    import threading
    import urllib.request

    from repro.server.app import make_server
    from repro.server.async_app import make_async_server

    clients = 4 if quick else 8
    rounds = 2 if quick else 4
    pool = pick_query_vertices(dblp, K, rounds, seed=41)

    def run_variant(kind):
        explorer = CExplorer(workers=2,
                             max_queue=clients * rounds + 8)
        explorer.add_graph("dblp", dblp, build="eager")
        if kind == "async_batched":
            server = make_async_server(explorer, port=0,
                                       batch_window=0.02)
            server.start_background()
        else:
            server = make_server(explorer, port=0)  # batching off
            threading.Thread(target=server.serve_forever,
                             daemon=True).start()
        base = "http://127.0.0.1:{}".format(server.server_address[1])
        barrier = threading.Barrier(clients + 1)
        answers = [[] for _ in range(clients)]

        def client(i):
            for q in pool:
                barrier.wait()
                req = urllib.request.Request(
                    base + "/v1/search",
                    data=_json.dumps({"vertex": q, "k": K}).encode(),
                    headers={"Content-Type": "application/json"})
                with urllib.request.urlopen(req, timeout=120) as resp:
                    doc = _json.loads(resp.read())
                answers[i].append(_json.dumps(
                    doc["data"]["communities"], sort_keys=True))

        threads = [threading.Thread(target=client, args=(i,))
                   for i in range(clients)]
        for t in threads:
            t.start()
        start = time.perf_counter()
        for _ in pool:
            barrier.wait()                   # release one round
        for t in threads:
            t.join()
        seconds = time.perf_counter() - start
        stats = explorer.engine.stats
        shared = stats.get("shared_answers")
        batches = stats.get("batches")
        try:
            server.shutdown()
        finally:
            explorer.engine.shutdown()
        return seconds, answers, {"shared_answers": shared,
                                  "batches": batches}

    def run():
        baseline_s, baseline_out, _ = run_variant("thread_per_request")
        batched_s, batched_out, stats = run_variant("async_batched")
        assert baseline_out == batched_out
        return {
            "clients": clients,
            "rounds": rounds,
            "requests": clients * rounds,
            "thread_per_request_seconds": round(baseline_s, 6),
            "async_batched_seconds": round(batched_s, 6),
            "speedup": round(baseline_s / batched_s, 2) if batched_s
            else float("inf"),
            "batching": stats,
        }

    doc = benchmark.pedantic(run, rounds=1, iterations=1)
    # The batcher really coalesced the herd: most answers were shared
    # from a leader's execution rather than recomputed.
    assert doc["batching"]["shared_answers"] >= \
        (clients - 1) * rounds // 2, doc
    # The acceptance floor: >= 1.5x serving throughput for >= 8
    # concurrent overlapping clients.  The quick pool is too small to
    # amortise server startup, so it only guards against gross loss.
    if quick:
        assert doc["speedup"] >= 0.5, doc
    else:
        assert doc["speedup"] >= 1.5, doc
    write_artifact("serving.json", json.dumps(doc, indent=2))
    update_bench_trajectory("serving", {
        "clients": clients,
        "rounds": rounds,
        "seconds": {
            "thread_per_request": doc["thread_per_request_seconds"],
            "async_batched": doc["async_batched_seconds"],
        },
        "shared_answers": doc["batching"]["shared_answers"],
        "speedup": doc["speedup"],
    }, quick=quick)


def test_resilience_under_faults(benchmark, dblp, quick):
    """The fault-tolerance acceptance shape: under a seeded 5%
    worker-kill plan on the sharded fan-out, the retry machinery
    absorbs every injected kill -- the success rate stays at 1.0,
    every answer is byte-identical to the fault-free run, and the
    tail (p99) latency pays only the retry backoff, not a query loss.

    Both passes drain the same cold pool through a 4-shard engine;
    the faulted pass carries ``kill:shard@0.05`` (every 20th shard
    job dies before executing and is retried alone with backoff).
    """
    from repro.engine.faults import FaultPlan

    distinct, repeats = _pool_shape(quick)
    pool = pick_query_vertices(dblp, K, distinct, seed=53) * repeats
    plan_spec = "seed=97;kill:shard@0.05"

    def canon(communities):
        return json.dumps([c.to_dict() for c in communities],
                          sort_keys=True)

    def p99(latencies):
        ordered = sorted(latencies)
        return ordered[min(len(ordered) - 1,
                           int(0.99 * len(ordered)))]

    def run_variant(spec):
        faults = FaultPlan.from_spec(spec) if spec else None
        explorer = CExplorer(workers=4, max_queue=len(pool) + 8,
                             faults=faults)
        explorer.add_graph("dblp", dblp, shards=4,
                           partitioner="greedy")
        answers, latencies, failures = [], [], 0
        try:
            # Warm the structural caches so both variants time the
            # query path, not first-query index builds.
            explorer.search("acq", pool[0], k=K, use_cache=False)
            for q in pool:
                start = time.perf_counter()
                try:
                    result = explorer.search("acq", q, k=K,
                                             use_cache=False)
                except CExplorerError:
                    failures += 1
                    result = None
                latencies.append(time.perf_counter() - start)
                answers.append(None if result is None
                               else canon(result))
            counters = dict(explorer.engine.snapshot()
                            ["resilience"]["counters"])
        finally:
            explorer.engine.shutdown()
        return answers, latencies, failures, counters

    def run():
        clean, clean_lat, _, _ = run_variant(None)
        faulted, faulted_lat, failures, counters = \
            run_variant(plan_spec)
        identical = sum(1 for a, b in zip(clean, faulted) if a == b)
        n = len(pool)
        return {
            "queries": n,
            "fault_plan": plan_spec,
            "success_rate": round((n - failures) / n, 4),
            "identical_rate": round(identical / n, 4),
            "p99_seconds": {"clean": round(p99(clean_lat), 6),
                            "faulted": round(p99(faulted_lat), 6)},
            "counters": {key: counters[key] for key in
                         ("retries", "retry_exhausted",
                          "faults_injected")},
        }

    doc = benchmark.pedantic(run, rounds=1, iterations=1)
    # The acceptance floor: at a 5% kill rate every query survives
    # (a loss needs three consecutive kills of the same shard job,
    # p ~ 1e-4) and survivors are byte-identical to the clean run.
    assert doc["success_rate"] == 1.0, doc
    assert doc["identical_rate"] == 1.0, doc
    # The plan really fired and the retries really absorbed it.
    assert doc["counters"]["faults_injected"] >= 1, doc
    assert doc["counters"]["retries"] >= 1, doc
    assert doc["counters"]["retry_exhausted"] == 0, doc
    write_artifact("resilience.json", json.dumps(doc, indent=2))
    update_bench_trajectory("resilience", {
        "queries": doc["queries"],
        "k": K,
        "fault_plan": plan_spec,
        "success_rate": doc["success_rate"],
        "identical_rate": doc["identical_rate"],
        "p99_seconds": doc["p99_seconds"],
        "counters": doc["counters"],
    }, quick=quick)


def test_tracing_overhead(benchmark, dblp, quick):
    """Query tracing must be free on the warm-cache fast path.

    Cache hits skip the trace lifecycle entirely (``future.trace`` is
    ``None``), so a warm pool with the recorder enabled must run at
    the same speed as with it disabled -- the acceptance budget is
    < 5% overhead (min-of-rounds to cut scheduler noise; quick mode's
    tiny pool only gets a sanity bound).  Misses still record full
    traces, asserted as a shape check.
    """
    pool = _query_pool(dblp, quick)
    explorer = CExplorer(workers=1, max_queue=len(pool) + 1)
    explorer.add_graph("dblp", dblp, build="eager")
    engine = explorer.engine

    def warm_pass():
        for q in pool:
            engine.search_sync("acq", q, k=K, timeout=60)

    def best_of(rounds, passes):
        best = float("inf")
        for _ in range(rounds):
            start = time.perf_counter()
            for _ in range(passes):
                warm_pass()
            best = min(best, time.perf_counter() - start)
        return best

    def run():
        warm_pass()                          # fill the cache
        # Misses recorded full traces while the cache filled.
        traced_misses = engine.tracer.stats()["recorded"]
        recorded_before = traced_misses
        warm_pass()                          # all hits, no new traces
        assert engine.tracer.stats()["recorded"] == recorded_before
        rounds, passes = (3, 5) if quick else (5, 20)
        best_of(1, passes)                   # untimed warm-up
        engine.tracer.configure(enabled=True)
        traced = best_of(rounds, passes)
        engine.tracer.configure(enabled=False)
        untraced = best_of(rounds, passes)
        engine.tracer.configure(enabled=True)
        return {"traced": traced, "untraced": untraced,
                "misses_recorded": traced_misses}

    results = benchmark.pedantic(run, rounds=1, iterations=1)
    explorer.engine.shutdown()
    overhead = (results["traced"] - results["untraced"]) \
        / results["untraced"]
    assert results["misses_recorded"] >= len(set(pool))
    # < 5% on the full pool; the quick pool is too small for a tight
    # bound, so it only guards against gross regressions.
    assert overhead < (0.5 if quick else 0.05), results
    update_bench_trajectory("tracing", {
        "queries": len(pool),
        "warm_traced_seconds": round(results["traced"], 6),
        "warm_untraced_seconds": round(results["untraced"], 6),
        "warm_overhead_pct": round(overhead * 100, 2),
    }, quick=quick)
