"""Engine bench -- repeated/overlapping searches direct vs. through
the query engine.

Interactive exploration traffic repeats itself (every display click
re-runs its search, hub authors get probed by many users), which is
exactly what the engine's result cache converts into dictionary hits.
This bench measures throughput over a repeated query pool four ways:
direct algorithm calls (the seed behaviour), engine cold (cache
filling as the pool drains), engine warm (every query a cache hit),
and engine warm with 4 workers (the server's concurrent
configuration).

Shape assertions: the warm engine answers the repeated workload at
least 10x faster than direct execution, and the cold engine is never
worse than ~2x direct (cache bookkeeping must stay in the noise).

Artifact: ``benchmarks/out/engine.json`` (machine-readable, like the
other benches' tables are human-readable).
"""

import json
import time

from repro.algorithms.registry import get_cs_algorithm
from repro.analysis.batch import pick_query_vertices
from repro.explorer.cexplorer import CExplorer

from bench_common import write_artifact

K = 4
DISTINCT = 12
REPEATS = 4


def _query_pool(graph):
    """DISTINCT feasible vertices, each repeated REPEATS times, round
    robin (overlapping traffic, not back-to-back duplicates)."""
    distinct = pick_query_vertices(graph, K, DISTINCT, seed=23)
    return distinct * REPEATS


def _throughput(n_queries, seconds):
    return round(n_queries / seconds, 2) if seconds > 0 else float("inf")


def test_engine_vs_direct(benchmark, dblp, dblp_index):
    pool = _query_pool(dblp)
    algo = get_cs_algorithm("acq")

    def run():
        results = {}

        # Direct execution, prebuilt index: the seed server's inline
        # path, every repeat pays the full algorithm.
        start = time.perf_counter()
        for q in pool:
            algo(dblp, q, K, index=dblp_index)
        direct = time.perf_counter() - start
        results["direct"] = direct

        # Engine, 1 worker, cold cache: repeats hit as the pool drains.
        explorer = CExplorer(workers=1, max_queue=len(pool) + 1)
        explorer.add_graph("dblp", dblp, build="eager")
        start = time.perf_counter()
        for q in pool:
            explorer.engine.search_sync("acq", q, k=K, timeout=60)
        results["engine_cold_1w"] = time.perf_counter() - start

        # Same engine, warm cache: every query is a hit.
        start = time.perf_counter()
        for q in pool:
            explorer.engine.search_sync("acq", q, k=K, timeout=60)
        results["engine_warm_1w"] = time.perf_counter() - start
        results["cache"] = explorer.cache.stats()
        explorer.engine.shutdown()

        # 4 workers, futures submitted up front (the server's shape:
        # many handler threads waiting on one pool), then a warm pass.
        explorer4 = CExplorer(workers=4, max_queue=len(pool) + 1)
        explorer4.add_graph("dblp", dblp, build="eager")
        start = time.perf_counter()
        futures = [explorer4.engine.search("acq", q, k=K, timeout=60)
                   for q in pool]
        for future in futures:
            future.result(60)
        results["engine_cold_4w"] = time.perf_counter() - start
        start = time.perf_counter()
        futures = [explorer4.engine.search("acq", q, k=K, timeout=60)
                   for q in pool]
        for future in futures:
            future.result(60)
        results["engine_warm_4w"] = time.perf_counter() - start
        explorer4.engine.shutdown()
        return results

    results = benchmark.pedantic(run, rounds=1, iterations=1)
    direct = results["direct"]
    warm = results["engine_warm_1w"]

    # The acceptance shape: a warm cache beats recomputation >= 10x.
    assert direct > 10 * warm, (direct, warm)
    # Engine bookkeeping on a cold cache stays within 2x of direct
    # (the repeats already win some of that back).
    assert results["engine_cold_1w"] < 2 * direct, results
    # The warm pool served everything from cache.
    assert results["cache"]["hits"] >= len(_query_pool(dblp))

    n = len(_query_pool(dblp))
    doc = {
        "queries": n,
        "distinct": DISTINCT,
        "repeats": REPEATS,
        "k": K,
        "seconds": {key: round(val, 6)
                    for key, val in results.items() if key != "cache"},
        "throughput_qps": {
            key: _throughput(n, val)
            for key, val in results.items() if key != "cache"},
        "speedup_warm_vs_direct": round(direct / warm, 1),
        "cache": results["cache"],
    }
    write_artifact("engine.json", json.dumps(doc, indent=2))
