"""E7 -- Section 3.2's claim: "Dec is generally faster than Inc-S and
Inc-T", which is why C-Explorer ships Dec.

Times the three ACQ algorithms on identical queries over the DBLP
workload, sweeping the keyword-set size |S|.  The shape to reproduce:
Dec <= Inc-T <= Inc-S for the walkthrough workload, with the gap
growing as |S| grows (incremental enumeration pays for every level
from 1 upward; Dec starts at the answer).
"""

import time

import pytest

from repro.core.acq import acq_search

from bench_common import write_artifact

_RESULTS = {}


@pytest.mark.parametrize("algorithm", ["dec", "inc-t", "inc-s"])
def test_acq_algorithm_walkthrough(benchmark, dblp, jim, dblp_index,
                                   algorithm):
    """All three algorithms, walkthrough query (k=4, S=W(q))."""
    benchmark.group = "acq-walkthrough"
    communities = benchmark(acq_search, dblp, jim, 4,
                            algorithm=algorithm, index=dblp_index)
    assert communities
    _RESULTS[algorithm] = communities[0].shared_keywords


@pytest.mark.parametrize("size", [4, 8, 12, 16])
def test_dec_keyword_size_sweep(benchmark, dblp, jim, dblp_index, size):
    benchmark.group = "dec-sweep"
    keywords = sorted(dblp.keywords(jim))[:size]
    communities = benchmark(acq_search, dblp, jim, 4, keywords=keywords,
                            algorithm="dec", index=dblp_index)
    assert communities is not None


def test_dec_vs_inc_shape(benchmark, dblp, jim, dblp_index):
    """One timed pass per algorithm; asserts the paper's ordering and
    writes the comparison artefact.  (Timings via perf_counter inside a
    single benchmark round so the assertion sees all three.)"""

    def run_all():
        timings = {}
        for algorithm in ("dec", "inc-t", "inc-s"):
            start = time.perf_counter()
            result = acq_search(dblp, jim, 4, algorithm=algorithm,
                                index=dblp_index)
            timings[algorithm] = time.perf_counter() - start
            assert result
        return timings

    timings = benchmark.pedantic(run_all, rounds=3, iterations=1,
                                 warmup_rounds=1)
    # The headline claim. Dec must beat the incremental variants; the
    # indexed incremental (Inc-T) should in turn not lose to Inc-S.
    assert timings["dec"] < timings["inc-s"]
    assert timings["dec"] < timings["inc-t"]

    lines = ["Section 3.2 - Dec vs Inc-S / Inc-T (q=jim gray, k=4, "
             "S=W(q), 20 keywords)", ""]
    for algorithm in ("dec", "inc-t", "inc-s"):
        lines.append("  {:<6} {:.4f}s".format(algorithm,
                                              timings[algorithm]))
    lines.append("")
    lines.append("Paper: 'Since Dec is generally faster than Inc-S and "
                 "Inc-T, we choose Dec for the system.'")
    write_artifact("dec_vs_inc.txt", "\n".join(lines))
