"""Ablation -- CD effectiveness vs ground truth, and CODICIL's alpha.

Two design questions the comparison-analysis module exists to answer:

1. How well do the CD methods recover planted communities as mixing
   grows (the planted-partition sweep)?
2. Does CODICIL's content signal actually help?  (alpha = 0 disables
   content edges entirely; the paper's thesis is that content + links
   beats links alone on attributed graphs.)
"""

from repro.algorithms.codicil import codicil
from repro.algorithms.label_propagation import label_propagation
from repro.analysis.ground_truth import evaluate_partition, partition_f1
from repro.datasets.lfr import generate_planted_partition

from bench_common import write_artifact


def test_detection_quality_sweep(benchmark):
    """F1/NMI of label propagation across the mixing sweep; shape:
    quality degrades monotonically-ish as mu grows."""

    def sweep():
        rows = []
        for mu in (0.05, 0.2, 0.4, 0.6):
            graph, truth = generate_planted_partition(
                n=240, communities=6, avg_degree=10, mu=mu, seed=11)
            found = label_propagation(graph, seed=3)
            report = evaluate_partition(found, truth.values())
            rows.append((mu, report["f1"], report["nmi"]))
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    assert rows[0][1] > rows[-1][1], "easy mix must beat hard mix"

    lines = ["Ablation - CD quality vs mixing (label propagation)",
             "", "{:>6} {:>8} {:>8}".format("mu", "F1", "NMI")]
    for mu, f1, nmi_score in rows:
        lines.append("{:>6} {:>8} {:>8}".format(mu, f1, nmi_score))
    write_artifact("detection_quality.txt", "\n".join(lines))


def test_codicil_alpha_ablation(benchmark):
    """CODICIL with content (alpha=0.5) vs without (alpha=0.0) on an
    attributed planted partition whose structure alone is ambiguous
    (mu = 0.45) but whose keywords are clean."""

    def measure():
        graph, truth = generate_planted_partition(
            n=240, communities=6, avg_degree=10, mu=0.45,
            keywords_per_community=6, seed=5)
        with_content = codicil(graph, alpha=0.5, seed=3)
        without_content = codicil(graph, alpha=0.0,
                                  content_neighbors=0, seed=3)
        return (partition_f1(with_content, truth.values()),
                partition_f1(without_content, truth.values()))

    with_content, without_content = benchmark.pedantic(
        measure, rounds=1, iterations=1)
    assert with_content >= without_content, \
        (with_content, without_content)
    write_artifact(
        "codicil_alpha.txt",
        "Ablation - CODICIL content signal (mu=0.45 planted "
        "partition)\n\n"
        "  with content edges (alpha=0.5):    F1 = {:.4f}\n"
        "  structure only (alpha=0.0, t=0):   F1 = {:.4f}\n\n"
        "CODICIL's thesis: fusing content and links beats links alone\n"
        "on attributed graphs with noisy structure.".format(
            with_content, without_content))


def test_codicil_runtime_vs_sample_ratio(benchmark):
    """Edge-sampling aggressiveness vs runtime (the sparsification
    knob)."""
    graph, _ = generate_planted_partition(n=240, communities=6,
                                          avg_degree=10, seed=5)

    def run():
        return codicil(graph, sample_ratio=0.3, seed=3)

    result = benchmark(run)
    assert result
