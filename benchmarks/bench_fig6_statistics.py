"""E4 -- Figure 6(a), bottom: the community statistics table.

Paper's table (DBLP, q = jim gray, degree >= 4):

    Method   Communities Vertices Edges Degree
    Global   1           305      763   5.0
    Local    1           50       160   6.4
    CODICIL  1           41       72    3.5
    ACQ      3           39       102   5.2

We regenerate the same rows on the synthetic DBLP.  Absolute sizes
depend on the generator, but the shape assertions encode the paper's
qualitative findings: every method answers, Global's community is by
far the largest (it returns the whole k-core component), and ACQ's
communities are far smaller and keyword-coherent.
"""

from repro.analysis.comparison import compare_methods
from repro.analysis.statistics import format_table

from bench_common import write_artifact

METHODS = ("global", "local", "codicil", "acq")


def _run_comparison(dblp, jim, dblp_index):
    return compare_methods(
        dblp, jim, 4, methods=METHODS,
        method_params={"acq": {"index": dblp_index},
                       "local": {"check_interval": 12}})


def test_fig6_statistics_table(benchmark, dblp, jim, dblp_index):
    report = benchmark.pedantic(_run_comparison,
                                args=(dblp, jim, dblp_index),
                                rounds=3, iterations=1, warmup_rounds=1)
    rows = {r["method"]: r for r in report.table_rows()}

    # Shape: every method found a community for the walkthrough query.
    for method in METHODS:
        assert rows[method]["communities"] >= 1, method

    # Shape: Global >> everyone else (305 vs 50/41/39 in the paper).
    sizes = {m: rows[m]["vertices"] for m in METHODS}
    assert sizes["global"] == max(sizes.values())
    assert sizes["global"] >= 3 * sizes["acq"]
    assert sizes["global"] >= 3 * sizes["local"]

    # Shape: all communities respect their degree constraint on average.
    assert rows["global"]["degree"] >= 4
    assert rows["acq"]["degree"] >= 4

    table = format_table(report.table_rows())
    write_artifact(
        "fig6_statistics.txt",
        "Figure 6(a) - community statistics (q=jim gray, degree>=4)\n\n"
        + table
        + "\n\nPaper's table for shape comparison:\n"
        "  Global   1  305  763  5.0\n"
        "  Local    1   50  160  6.4\n"
        "  CODICIL  1   41   72  3.5\n"
        "  ACQ      3   39  102  5.2")


def test_fig6_single_method_global(benchmark, dblp, jim):
    from repro.algorithms.global_search import global_search
    result = benchmark(global_search, dblp, jim, 4)
    assert result


def test_fig6_single_method_local(benchmark, dblp, jim):
    from repro.algorithms.local_search import local_search
    result = benchmark(local_search, dblp, jim, 4, check_interval=12)
    assert result


def test_fig6_single_method_codicil(benchmark, dblp, jim):
    from repro.algorithms.codicil import codicil_community
    result = benchmark.pedantic(codicil_community, args=(dblp, jim),
                                rounds=2, iterations=1)
    assert result


def test_fig6_single_method_acq(benchmark, dblp, jim, dblp_index):
    from repro.core.acq import acq_search
    result = benchmark(acq_search, dblp, jim, 4, index=dblp_index)
    assert result
