"""E2 -- Figure 2: the member-profile pop-up and onward exploration.

Times the click-a-portrait loop: look up the profile of a community
member, then run that member's own community query ("Users can then
continue to explore Michael's communities").
"""

from repro.core.acq import acq_search

from bench_common import write_artifact


def test_fig2_profile_lookup(benchmark, explorer):
    profile = benchmark(explorer.profile, "Michael Stonebraker")
    assert profile.name == "Michael Stonebraker"
    assert "Berkeley" in profile.institute
    write_artifact("fig2_profile.txt",
                   "Figure 2 - author profile card\n\n"
                   + profile.render_text())


def test_fig2_synthetic_profile_lookup(benchmark, explorer, dblp, jim):
    """Profiles exist for every member, not just renowned ones."""
    member = max(dblp.neighbors(jim), key=dblp.degree)
    name = dblp.display_name(member)
    profile = benchmark(explorer.profile, name)
    assert profile.name == name


def test_fig2_onward_exploration(benchmark, dblp, dblp_index, jim):
    """Explore the community of a member of Jim Gray's community."""
    base = acq_search(dblp, jim, 4, index=dblp_index)[0]
    member = next(v for v in sorted(base.vertices) if v != jim)

    communities = benchmark(acq_search, dblp, member, 3, algorithm="dec",
                            index=dblp_index)
    assert communities
    assert member in communities[0]
