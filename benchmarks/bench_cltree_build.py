"""E8 -- Section 3.2's claim: "the CL-tree can be built in linear space
and time cost".

Sweeps the generator from 500 to 8,000 authors, timing the advanced
builder and measuring index size.  Shape assertions: build time per
(n + m) stays within a constant factor across an order of magnitude of
scale (linearity), and index entries stay O(n + total keywords).
The basic builder is benched as the ablation.
"""

import time

import pytest

from repro.core.cltree import build_cltree, build_cltree_basic

from bench_common import dblp_sized, write_artifact

SIZES = [500, 1000, 2000, 4000, 8000]


@pytest.mark.parametrize("n", SIZES)
def test_cltree_build_scaling(benchmark, n):
    benchmark.group = "cltree-build"
    graph = dblp_sized(n)
    tree = benchmark.pedantic(build_cltree, args=(graph,), rounds=3,
                              iterations=1, warmup_rounds=1)
    sizes = tree.index_size()
    # Linear space: one vertex entry per vertex, postings bounded by
    # the total keyword count.
    assert sizes["vertex_entries"] == graph.vertex_count
    total_keywords = sum(len(graph.keywords(v)) for v in graph.vertices())
    assert sizes["postings"] == total_keywords


def test_cltree_linearity_shape(benchmark):
    """One pass over the sweep inside a single bench: assert that
    time/(n+m) at the largest scale is within 8x of the smallest
    (i.e. growth is near-linear, not quadratic), and write the table."""

    def sweep():
        rows = []
        for n in SIZES:
            graph = dblp_sized(n)
            start = time.perf_counter()
            tree = build_cltree(graph)
            elapsed = time.perf_counter() - start
            size = graph.vertex_count + graph.edge_count
            rows.append((n, graph.edge_count, elapsed,
                         elapsed / size * 1e6,
                         tree.index_size()["postings"]))
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    per_unit = [r[3] for r in rows]
    assert per_unit[-1] < 8 * per_unit[0], \
        "build time per (n+m) grew superlinearly: {}".format(per_unit)

    lines = ["Section 3.2 - CL-tree build scaling (advanced builder)",
             "",
             "{:>7} {:>8} {:>10} {:>14} {:>10}".format(
                 "n", "m", "seconds", "us per (n+m)", "postings")]
    for n, m, secs, unit, postings in rows:
        lines.append("{:>7} {:>8} {:>10.4f} {:>14.3f} {:>10}".format(
            n, m, secs, unit, postings))
    write_artifact("cltree_build_scaling.txt", "\n".join(lines))


def test_cltree_advanced_vs_basic(benchmark):
    """Ablation: the advanced builder should not lose to the basic one
    (and typically wins as core depth grows)."""
    graph = dblp_sized(2000)

    def both():
        start = time.perf_counter()
        build_cltree(graph)
        advanced = time.perf_counter() - start
        start = time.perf_counter()
        build_cltree_basic(graph)
        basic = time.perf_counter() - start
        return advanced, basic

    advanced, basic = benchmark.pedantic(both, rounds=3, iterations=1)
    # Allow noise, but advanced must not be drastically slower.
    assert advanced < 3 * basic
