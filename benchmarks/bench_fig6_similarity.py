"""E5 -- Figure 6(a), top: the CPJ / CMF similarity bar charts.

"the CPJ and CMF values of communities retrieved by different methods
are depicted in bar graphs ... higher values of CPJ and CMF imply
better cohesiveness".  The shape to reproduce (from the ACQ paper's
evaluation): ACQ's keyword-aware communities top both metrics against
the structure-only baselines.
"""

from repro.analysis.comparison import compare_methods
from repro.analysis.metrics import cmf, cpj
from repro.core.acq import acq_search

from bench_common import write_artifact

METHODS = ("global", "local", "codicil", "acq")


def _bars(dblp, jim, dblp_index):
    report = compare_methods(
        dblp, jim, 4, methods=METHODS,
        method_params={"acq": {"index": dblp_index}})
    return report.quality_bars()


def test_fig6_similarity_bars(benchmark, dblp, jim, dblp_index):
    bars = benchmark.pedantic(_bars, args=(dblp, jim, dblp_index),
                              rounds=2, iterations=1)

    # Shape: ACQ leads on both metrics.
    for other in ("global", "codicil", "local"):
        assert bars["acq"]["cpj"] >= bars[other]["cpj"], other
    for other in ("global", "codicil"):
        assert bars["acq"]["cmf"] >= bars[other]["cmf"], other

    width = 40
    lines = ["Figure 6(a) - similarity analysis (CPJ / CMF bars)", ""]
    for metric in ("cpj", "cmf"):
        lines.append(metric.upper() + ":")
        for method in METHODS:
            value = bars[method][metric]
            bar = "#" * int(round(value * width))
            lines.append("  {:<8} {:<6} {}".format(method, value, bar))
        lines.append("")
    write_artifact("fig6_similarity.txt", "\n".join(lines))

    # The actual bar *graphs* of the figure, as SVG artefacts.
    from repro.viz.charts import render_bar_chart
    for metric in ("cpj", "cmf"):
        svg = render_bar_chart(
            {m: bars[m][metric] for m in METHODS},
            title="Figure 6(a) - {}".format(metric.upper()))
        write_artifact("fig6_{}_bars.svg".format(metric), svg)


def test_fig6_cpj_computation(benchmark, dblp, jim, dblp_index):
    """CPJ evaluation cost on the walkthrough community."""
    community = acq_search(dblp, jim, 4, index=dblp_index)[0]
    value = benchmark(cpj, community)
    assert 0.0 <= value <= 1.0


def test_fig6_cmf_computation(benchmark, dblp, jim, dblp_index):
    community = acq_search(dblp, jim, 4, index=dblp_index)[0]
    value = benchmark(cmf, community)
    assert 0.0 <= value <= 1.0
