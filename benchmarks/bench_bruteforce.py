"""E10 -- Section 3.2's strawman: answering ACQ by enumerating every
subset of S "has a complexity exponential to the size of S ...
impractical".

Times brute-force enumeration against Dec while |S| grows.  Shape:
brute force blows up exponentially (each added keyword roughly doubles
its work when the answer is small relative to S); Dec stays flat.
"""

import time

import pytest

from repro.core.acq import AcqQuery, acq_search, brute_force_acq

from bench_common import write_artifact

# Keep sizes small: the whole point is that brute force explodes.
SIZES = [4, 6, 8, 10, 12]


def _keywords(dblp, jim, size):
    # Mix topic keywords with common fillers so not every subset works:
    # the adversarial case for enumeration.
    return sorted(dblp.keywords(jim))[:size]


@pytest.mark.parametrize("size", [4, 8, 12])
def test_bruteforce_cost(benchmark, dblp, jim, size):
    benchmark.group = "bruteforce"
    query = AcqQuery(dblp, jim, 4, keywords=_keywords(dblp, jim, size))
    result = benchmark.pedantic(brute_force_acq, args=(query,),
                                rounds=1, iterations=1)
    assert result is not None


@pytest.mark.parametrize("size", [4, 8, 12])
def test_dec_cost_same_queries(benchmark, dblp, jim, dblp_index, size):
    benchmark.group = "dec-same-queries"
    keywords = _keywords(dblp, jim, size)
    result = benchmark(acq_search, dblp, jim, 4, keywords=keywords,
                       algorithm="dec", index=dblp_index)
    assert result is not None


def test_bruteforce_vs_dec_shape(benchmark, dblp, jim, dblp_index):
    """Sweep |S|; assert Dec wins at every size and the gap widens."""

    def sweep():
        rows = []
        for size in SIZES:
            keywords = _keywords(dblp, jim, size)
            start = time.perf_counter()
            brute = brute_force_acq(
                AcqQuery(dblp, jim, 4, keywords=keywords))
            brute_secs = time.perf_counter() - start
            start = time.perf_counter()
            dec = acq_search(dblp, jim, 4, keywords=keywords,
                             algorithm="dec", index=dblp_index)
            dec_secs = time.perf_counter() - start
            # Same answers, wildly different costs.
            assert ({(c.vertices, c.shared_keywords) for c in brute}
                    == {(c.vertices, c.shared_keywords) for c in dec})
            rows.append((size, brute_secs, dec_secs))
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    for size, brute_secs, dec_secs in rows:
        assert dec_secs <= brute_secs * 1.5, (size, brute_secs, dec_secs)
    # Exponential blow-up: the largest S costs brute force far more
    # than the smallest; Dec grows mildly.
    assert rows[-1][1] > 4 * rows[0][1]

    lines = ["Section 3.2 - brute-force subset enumeration vs Dec",
             "",
             "{:>4} {:>12} {:>12} {:>8}".format("|S|", "brute (s)",
                                                "dec (s)", "ratio")]
    for size, brute_secs, dec_secs in rows:
        lines.append("{:>4} {:>12.4f} {:>12.4f} {:>8.1f}".format(
            size, brute_secs, dec_secs,
            brute_secs / dec_secs if dec_secs else float("inf")))
    write_artifact("bruteforce_vs_dec.txt", "\n".join(lines))
