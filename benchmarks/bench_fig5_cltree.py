"""E3 -- Figure 5: the example graph and its CL-tree index.

Regenerates Figure 5(b): the exact tree over the paper's 10-vertex
example, and benches both index builders on it and on the DBLP
workload.  The structure assertions make this bench double as the
figure's correctness check.
"""

from repro.core.cltree import build_cltree, build_cltree_basic
from repro.datasets import figure5_graph

from bench_common import write_artifact

EXPECTED_TREE = (
    "[k=0] {J}\n"
    "  [k=1] {F, G}\n"
    "    [k=2] {E}\n"
    "      [k=3] {A, B, C, D}\n"
    "  [k=1] {H, I}"
)


def test_fig5_cltree_structure(benchmark):
    """Figure 5(b): advanced build reproduces the paper's tree."""
    graph = figure5_graph()
    tree = benchmark(build_cltree, graph)
    assert tree.describe() == EXPECTED_TREE
    write_artifact(
        "fig5_cltree.txt",
        "Figure 5(b) - CL-tree of the example graph\n\n"
        + tree.describe()
        + "\n\nCore number table:\n"
        + "\n".join("  {}: {}".format(k, v) for k, v in [
            ("0", "J"), ("1", "F, G, H, I"), ("2", "E"),
            ("3", "A, B, C, D")]))


def test_fig5_cltree_basic_builder(benchmark):
    """The basic (oracle) builder produces the same tree."""
    graph = figure5_graph()
    tree = benchmark(build_cltree_basic, graph)
    assert tree.describe() == EXPECTED_TREE


def test_cltree_build_dblp_advanced(benchmark, dblp):
    """Advanced builder on the 2,000-author demo workload."""
    tree = benchmark(build_cltree, dblp)
    assert tree.node_count() > 0


def test_cltree_build_dblp_basic(benchmark, dblp):
    """Basic builder on the same workload (the ablation baseline)."""
    tree = benchmark(build_cltree_basic, dblp)
    assert tree.node_count() > 0
