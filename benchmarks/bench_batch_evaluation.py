"""Extension bench -- aggregate evaluation over a query pool.

The paper motivates C-Explorer with "a more extensive experimental
evaluation of CR solutions"; this bench runs that evaluation: all CS
methods over 25 random feasible query vertices, reporting aggregate
quality and latency.  Shape assertions: ACQ leads aggregate CPJ and
CMF (the [4] claim generalised beyond one walkthrough query), and the
indexed CS methods stay in interactive latency per query.
"""

from repro.analysis.batch import batch_evaluate, format_batch_table

from bench_common import write_artifact

METHODS = ("global", "local", "acq")


def test_batch_evaluation(benchmark, dblp, dblp_index):
    def run():
        return batch_evaluate(
            dblp, METHODS, k=4, n_queries=25, seed=17,
            method_params={"acq": {"index": dblp_index}})

    results = benchmark.pedantic(run, rounds=1, iterations=1)

    # Exact methods answer every feasible query; Local is a budgeted
    # heuristic and may abandon a rare hard instance.
    assert results["global"]["answered"] == 25
    assert results["acq"]["answered"] == 25
    assert results["local"]["answered"] >= 22
    assert results["acq"]["avg_cpj"] > results["global"]["avg_cpj"]
    assert results["acq"]["avg_cmf"] > results["global"]["avg_cmf"]
    assert results["acq"]["avg_seconds"] < 0.25

    write_artifact(
        "batch_evaluation.txt",
        "Aggregate evaluation - 25 random queries, k=4 (synthetic "
        "DBLP)\n\n" + format_batch_table(results))


def test_batch_query_pool_cost(benchmark, dblp):
    from repro.analysis.batch import pick_query_vertices
    queries = benchmark(pick_query_vertices, dblp, 4, 25, seed=17)
    assert len(queries) == 25
