"""E1 -- Figure 1: the community-exploration query.

The demo promises communities "returned instantly" once the user hits
Search.  This bench times the end-to-end ACQ (Dec) query for the
walkthrough parameters -- author "jim gray", degree >= 4, the author's
own keywords -- against the prebuilt CL-tree, and regenerates the right
panel: the community, its theme, and the member list.
"""

from repro.core.acq import acq_search

from bench_common import write_artifact


def test_fig1_acq_exploration_query(benchmark, dblp, dblp_index, jim):
    communities = benchmark(acq_search, dblp, jim, 4, algorithm="dec",
                            index=dblp_index)
    assert communities, "the walkthrough query must find a community"
    community = communities[0]
    assert jim in community
    assert community.minimum_internal_degree() >= 4
    assert community.theme(), "an attributed community carries a theme"

    lines = ["Figure 1 - community exploration (q=jim gray, degree>=4)",
             "", "Communities: {}".format(len(communities)),
             "Theme: {}".format(", ".join(community.theme(limit=8))),
             "", "Members:"]
    lines.extend("  " + name for name in community.member_names())
    write_artifact("fig1_exploration.txt", "\n".join(lines))


def test_fig1_query_without_index(benchmark, dblp, jim):
    """Ablation: the same query paying a fresh index build every time --
    what 'online' would cost without the Indexing module."""
    communities = benchmark(acq_search, dblp, jim, 4, algorithm="dec",
                            index=None)
    assert communities


def test_fig1_structural_lookup_via_index(benchmark, dblp_index, jim):
    """The index lookup alone (locating the k-core component) is
    microseconds -- the reason exploration feels instant."""
    members = benchmark(dblp_index.community_vertices, jim, 4)
    assert members and jim in members


def test_fig1_keyword_panel(benchmark, explorer):
    """The left panel round trip: resolve the name, list constraints."""
    options = benchmark(explorer.query_options, "jim gray")
    assert options["keywords"]
    assert options["max_k"] >= 4
