"""E6 -- Figure 6(b): visual comparison of two methods' communities.

Regenerates the side-by-side view: the ACQ community and the Local
community of the same query, laid out and rendered to SVG (our JUNG
substitute).  The SVG artefacts land in benchmarks/out/.
"""

from repro.algorithms.local_search import local_search
from repro.core.acq import acq_search
from repro.viz.layout import ego_layout, spring_layout
from repro.viz.render import render_svg

from bench_common import write_artifact


def test_fig6b_acq_view(benchmark, dblp, jim, dblp_index):
    community = acq_search(dblp, jim, 4, index=dblp_index)[0]

    def draw():
        return render_svg(community, layout=ego_layout(community),
                          title="Method: ACQ")
    svg = benchmark(draw)
    assert svg.startswith("<svg")
    write_artifact("fig6b_acq.svg", svg)


def test_fig6b_local_view(benchmark, dblp, jim):
    community = local_search(dblp, jim, 4, check_interval=12)[0]

    def draw():
        return render_svg(community, layout=ego_layout(community),
                          title="Method: Local")
    svg = benchmark(draw)
    assert svg.startswith("<svg")
    write_artifact("fig6b_local.svg", svg)


def test_fig6b_spring_layout_cost(benchmark, dblp, jim, dblp_index):
    """The force-directed layout is the expensive display path."""
    community = acq_search(dblp, jim, 4, index=dblp_index)[0]
    positions = benchmark(spring_layout, community, iterations=40, seed=1)
    assert set(positions) == set(community.vertices)


def test_fig6b_ego_layout_cost(benchmark, dblp, jim, dblp_index):
    community = acq_search(dblp, jim, 4, index=dblp_index)[0]
    positions = benchmark(ego_layout, community)
    assert set(positions) == set(community.vertices)
