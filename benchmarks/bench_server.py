"""E11 -- Section 4: "the communities will be returned instantly and
displayed in the browser".

End-to-end HTTP round trips against the browser-server substrate:
search, display and compare endpoints, on the live threaded server.
"""

import json
import threading
import urllib.request

import pytest

from repro.server.app import make_server

from bench_common import write_artifact


@pytest.fixture(scope="module")
def live_server(explorer):
    srv = make_server(explorer, port=0)
    thread = threading.Thread(target=srv.serve_forever, daemon=True)
    thread.start()
    yield srv
    srv.shutdown()


def _post(server, path, doc):
    url = "http://127.0.0.1:{}{}".format(server.server_address[1], path)
    req = urllib.request.Request(
        url, data=json.dumps(doc).encode("utf-8"),
        headers={"Content-Type": "application/json"})
    with urllib.request.urlopen(req) as resp:
        return json.loads(resp.read())


def test_server_search_roundtrip(benchmark, live_server):
    doc = benchmark(_post, live_server, "/api/search",
                    {"vertex": "jim gray", "k": 4})
    assert doc["communities"]


def test_server_display_roundtrip(benchmark, live_server):
    doc = benchmark(_post, live_server, "/api/display",
                    {"vertex": "jim gray", "k": 4, "community": 0})
    assert doc["svg"].startswith("<svg")


def test_server_options_roundtrip(benchmark, live_server):
    doc = benchmark(_post, live_server, "/api/options",
                    {"vertex": "jim gray"})
    assert doc["keywords"]


def test_server_profile_roundtrip(benchmark, live_server):
    doc = benchmark(_post, live_server, "/api/profile",
                    {"vertex": "Jim Gray"})
    assert doc["name"] == "Jim Gray"


def test_server_instant_claim(benchmark, live_server):
    """The demo claim, quantified: a full search round trip (HTTP +
    query + serialisation) stays under 250 ms."""
    import time

    def timed():
        start = time.perf_counter()
        _post(live_server, "/api/search", {"vertex": "jim gray", "k": 4})
        return time.perf_counter() - start

    elapsed = benchmark.pedantic(timed, rounds=5, iterations=1,
                                 warmup_rounds=2)
    assert elapsed < 0.25
    write_artifact(
        "server_roundtrip.txt",
        "Section 4 - 'returned instantly': HTTP search round trip\n\n"
        "  one search round trip: {:.4f}s (< 0.25s budget)".format(
            elapsed))
